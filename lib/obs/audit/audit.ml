module Eidetic = Treesls_ckpt.Eidetic
module Manager = Treesls_ckpt.Manager
module Oroot = Treesls_ckpt.Oroot
module Ckpt_page = Treesls_ckpt.Ckpt_page
module Snapshot = Treesls_ckpt.Snapshot
module Restore = Treesls_ckpt.Restore
module State = Treesls_ckpt.State
module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Store = Treesls_nvm.Store
module Paddr = Treesls_nvm.Paddr
module Buddy = Treesls_nvm.Buddy
module Slab = Treesls_nvm.Slab
module Global_meta = Treesls_nvm.Global_meta
module Probe = Treesls_obs.Probe
module Wearmap = Treesls_obs.Wearmap

type severity = Info | Warning | Error
type subsystem = Meta | Journal | Captree | Pages | Allocator | Eternal | Wear

type violation = {
  severity : severity;
  subsystem : subsystem;
  obj_id : int option;
  pno : int option;
  paddr : Paddr.t option;
  message : string;
}

type report = {
  version : int;
  objects_checked : int;
  pages_checked : int;
  violations : violation list;
  census : Nvm_census.t;
}

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let subsystem_name = function
  | Meta -> "meta"
  | Journal -> "journal"
  | Captree -> "captree"
  | Pages -> "pages"
  | Allocator -> "allocator"
  | Eternal -> "eternal"
  | Wear -> "wear"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

(* Wear-health thresholds (doctor): warn when a checkpoint interval's
   write amplification or the per-page wear skew crosses these.  Opt-in —
   [run] performs the checks only when thresholds are passed, so a plain
   audit of a healthy system still reports zero violations. *)
type wear_thresholds = { waf_warn : float; skew_warn : float; skew_min_pages : int }

let default_wear_thresholds = { waf_warn = 8.0; skew_warn = 50.0; skew_min_pages = 64 }

(* ------------------------------------------------------------------ *)
(* The audit walk                                                      *)

let run ?wear mgr =
  let st = Manager.state mgr in
  let kernel = Manager.kernel mgr in
  let store = Kernel.store kernel in
  let meta = Store.meta store in
  let g = Global_meta.version meta in
  (* Async drain: between a publish and its settle the system legitimately
     holds state stamped one version above the committed [g] — staged
     snapshots, restamped/drain-saved backups, an In_progress meta.  Stamp
     checks run against [limit]; the restore-choice replay below stays at
     [g], because that is what a crash right now would restore to. *)
  let pending_ver = Manager.drain_pending_version mgr in
  let limit = match pending_ver with Some v -> max v g | None -> g in
  let violations = ref [] in
  let add ?obj_id ?pno ?paddr severity subsystem fmt =
    Printf.ksprintf
      (fun message ->
        violations := { severity; subsystem; obj_id; pno; paddr; message } :: !violations)
      fmt
  in
  let objects_checked = ref 0 and pages_checked = ref 0 in

  (* Meta / journal: a quiesced system is outside any STW pause (a pending
     drain window legitimately keeps the meta In_progress until settle). *)
  if Global_meta.status meta <> Global_meta.Idle && pending_ver = None then
    add Error Meta "checkpoint marked in flight on a quiesced system";
  if Store.journal_in_flight store then
    add Error Journal "allocator journal holds an un-truncated record outside a checkpoint";

  (* The runtime tree, by object id. *)
  let root = Kernel.root kernel in
  let reachable : (int, Kobj.t) Hashtbl.t = Hashtbl.create 256 in
  Kobj.iter_tree ~root (fun obj -> Hashtbl.replace reachable (Kobj.id obj) obj);
  let radixes = Restore.tree_radixes (Some root) in

  (* Captree: ORoot version sanity, snapshot restorability, references. *)
  Manager.iter_oroots mgr (fun oid (oroot : Oroot.t) ->
    incr objects_checked;
    let add ?pno ?paddr sev fmt = add ~obj_id:oid ?pno ?paddr sev Captree fmt in
    if oroot.Oroot.first_ver > oroot.Oroot.last_seen_ver then
      add Error "ORoot first_ver v%d above last_seen_ver v%d" oroot.Oroot.first_ver
        oroot.Oroot.last_seen_ver;
    if oroot.Oroot.first_ver > limit then
      add Error "ORoot born in uncommitted checkpoint v%d (committed v%d)"
        oroot.Oroot.first_ver g;
    if oroot.Oroot.last_seen_ver > limit then
      add Error "ORoot walked by uncommitted checkpoint v%d (committed v%d)"
        oroot.Oroot.last_seen_ver g
    else if
      oroot.Oroot.last_seen_ver < g
      && (not (Hashtbl.mem reachable oid))
      && pending_ver = None
    then
      (* live objects may legitimately carry a stale last_seen_ver: the
         incremental walk skips clean objects without refreshing it — only
         an *unreachable* object with a surviving ORoot was missed by GC
         (deferred to settle while a drain window is pending) *)
      add Warning "stale ORoot missed by GC (last walked v%d, committed v%d)"
        oroot.Oroot.last_seen_ver g;
    let slot name = function
      | Some (v, _) when v > limit ->
        add Error "snapshot slot %s stamped v%d above committed v%d" name v g
      | Some _ | None -> ()
    in
    slot "a" oroot.Oroot.slot_a;
    slot "b" oroot.Oroot.slot_b;
    if oroot.Oroot.first_ver <= g then
      match Oroot.latest_le oroot ~version:g with
      | None -> add Error "object committed at v%d has no restorable snapshot" g
      | Some (v, snap) ->
        List.iter
          (fun rid ->
            if Manager.find_oroot mgr rid = None then
              add Warning "snapshot v%d references object %d which has no ORoot" v rid)
          (Snapshot.references snap));

  (* Pages: the CP/CPP state machine and version stamps. *)
  Manager.iter_oroots mgr (fun oid (oroot : Oroot.t) ->
    match oroot.Oroot.pages with
    | None -> ()
    | Some cps ->
      (* Prefer the live tree's radix: ORoot.runtime is only refreshed by
         the checkpoint walk, so right after a restore it still points at
         the discarded crash-time object. *)
      let runtime_radix =
        match Hashtbl.find_opt radixes oid with
        | Some r -> Some r
        | None -> (
          match oroot.Oroot.runtime with
          | Some (Kobj.Pmo p) -> Some p.Kobj.pmo_radix
          | Some _ | None -> None)
      in
      Ckpt_page.iter
        (fun pno (cp : Ckpt_page.cp) ->
          incr pages_checked;
          let add ?paddr sev fmt = add ~obj_id:oid ~pno ?paddr sev Pages fmt in
          if cp.Ckpt_page.born_ver > limit then
            add Error "page record born at v%d above committed v%d" cp.Ckpt_page.born_ver g;
          if cp.Ckpt_page.b1_ver > limit then
            add Error "backup b1 stamped v%d above committed v%d" cp.Ckpt_page.b1_ver g;
          if cp.Ckpt_page.b2_ver > limit then
            add Error "backup b2 stamped v%d above committed v%d" cp.Ckpt_page.b2_ver g;
          let nvm_only name = function
            | Some p when not (Paddr.is_nvm p) ->
              add ~paddr:p Error "backup %s lives on %s, not NVM" name (Paddr.to_string p)
            | Some _ | None -> ()
          in
          nvm_only "b1" cp.Ckpt_page.b1;
          nvm_only "b2" cp.Ckpt_page.b2;
          let runtime =
            match runtime_radix with Some r -> Radix.get r pno | None -> None
          in
          match runtime with
          | Some rp when Paddr.is_dram rp ->
            if cp.Ckpt_page.b1 = None || cp.Ckpt_page.b2 = None then
              add ~paddr:rp Error "DRAM-cached page missing a CPP backup half"
          | Some rp ->
            if cp.Ckpt_page.b2 <> None then
              add ~paddr:rp Error "persistent runtime page carries a CPP marker (b2 set)"
          | None -> ())
        cps);

  (* Replay the restore rule: every committed page must have a source,
     and sealed sources must still verify (data reliability, paper §8). *)
  Restore.iter_restore_choices st ~radixes ~global:g (fun ~pmo_id ~pno ~cp ~choice ->
    match choice with
    | `Use p ->
      if Paddr.is_nvm p && not (Store.verify_page store p) then
        add ~obj_id:pmo_id ~pno ~paddr:p Error Pages
          "restore source fails checksum verification"
    | `Drop ->
      if cp.Ckpt_page.born_ver <= g then
        add ~obj_id:pmo_id ~pno Error Pages
          "page committed at v%d has no restorable source" cp.Ckpt_page.born_ver);

  (* Eternal PMOs: excluded from rollback (§5). *)
  Hashtbl.iter
    (fun oid obj ->
      match obj with
      | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_eternal ->
        let add ?pno ?paddr sev fmt = add ~obj_id:oid ?pno ?paddr sev Eternal fmt in
        Radix.iter
          (fun pno paddr ->
            if not (Paddr.is_nvm paddr) then
              add ~pno ~paddr Error "eternal PMO frame lives on %s, not NVM"
                (Paddr.to_string paddr))
          p.Kobj.pmo_radix;
        (match Manager.find_oroot mgr oid with
        | None -> ()
        | Some oroot ->
          if oroot.Oroot.pages <> None then
            add Error "eternal PMO carries rollback page records";
          (match Oroot.latest_le oroot ~version:g with
          | Some (v, Snapshot.S_pmo { eternal_frames; _ }) ->
            List.iter
              (fun (pno, paddr) ->
                match Radix.get p.Kobj.pmo_radix pno with
                | Some cur when Paddr.equal cur paddr -> ()
                | Some _ | None ->
                  add ~pno ~paddr Warning
                    "eternal frame recorded at v%d is no longer mapped" v)
              eternal_frames
          | Some _ | None -> ()))
      | _ -> ())
    reachable;

  (* The trace ring's NVM backing must be a reachable eternal PMO. *)
  (match Probe.installed () with
  | Some probe when Probe.clock probe == Kernel.clock kernel -> (
    match Probe.backing_pmo probe with
    | None -> ()
    | Some id -> (
      match Hashtbl.find_opt reachable id with
      | Some (Kobj.Pmo p) when p.Kobj.pmo_kind = Kobj.Pmo_eternal -> ()
      | Some _ -> add ~obj_id:id Error Eternal "trace backing object is not an eternal PMO"
      | None ->
        add ~obj_id:id Error Eternal "trace backing PMO is not reachable from the root"))
  | Some _ | None -> ());

  (* The wearmap's NVM backing (when reserved) follows the same rule. *)
  (match Probe.installed () with
  | Some probe when Probe.clock probe == Kernel.clock kernel -> (
    match Probe.wear_backing_pmo probe with
    | None -> ()
    | Some id -> (
      match Hashtbl.find_opt reachable id with
      | Some (Kobj.Pmo p) when p.Kobj.pmo_kind = Kobj.Pmo_eternal -> ()
      | Some _ -> add ~obj_id:id Error Eternal "wear backing object is not an eternal PMO"
      | None ->
        add ~obj_id:id Error Eternal "wear backing PMO is not reachable from the root"))
  | Some _ | None -> ());

  (* Wear health (doctor, opt-in): write-amplification and wear-skew
     thresholds, plus unattributed writes — NVM bytes recorded outside any
     writer context mean an instrumentation gap. *)
  (match (wear, Probe.installed ()) with
  | Some th, Some probe when Probe.clock probe == Kernel.clock kernel ->
    let wm = Probe.wearmap probe in
    let unattributed = Wearmap.subsystem_bytes wm Wearmap.unattributed in
    if unattributed > 0 then
      add Warning Wear "%d NVM bytes written outside any writer context" unattributed;
    (match Manager.last_report mgr with
    | Some r when r.Treesls_ckpt.Report.logical_dirty_bytes > 0 ->
      let waf = Treesls_ckpt.Report.waf r in
      if waf > th.waf_warn then
        add Warning Wear "write amplification %.2f exceeds threshold %.2f (last checkpoint)"
          waf th.waf_warn
    | Some _ | None -> ());
    let tracked = Wearmap.pages_tracked wm in
    if tracked >= th.skew_min_pages then begin
      let skew = Wearmap.skew wm in
      if skew > th.skew_warn then
        add Warning Wear
          "wear skew %.1f (max/mean writes over %d pages) exceeds threshold %.1f" skew
          tracked th.skew_warn
    end
  | _ -> ());

  (* Allocator: internal invariants, then reconcile every live buddy
     block against exactly one owning subsystem. *)
  let buddy = Store.buddy store in
  let slab = Store.slab store in
  (try Buddy.check_invariants buddy
   with Failure m -> add Error Allocator "buddy invariant violated: %s" m);
  (try Slab.check_invariants slab
   with Failure m -> add Error Allocator "slab invariant violated: %s" m);
  let roles : (int, string) Hashtbl.t = Hashtbl.create 512 in
  let claim ?obj_id ?pno idx role =
    match Hashtbl.find_opt roles idx with
    | Some other ->
      add ?obj_id ?pno ~paddr:(Paddr.nvm idx) Error Allocator
        "NVM page claimed as both %s and %s" other role
    | None -> Hashtbl.replace roles idx role
  in
  List.iter (fun off -> claim off "slab page") (Slab.slab_pages slab);
  (* In-flight drain frames: version-N content saved by CoW faults during a
     pending window, referenced only by the drain's saved table until
     settle installs them (or restore frees them). *)
  List.iter
    (fun (p : Paddr.t) -> claim p.Paddr.idx "drain-saved frame")
    (Manager.drain_saved_frames mgr);
  let claim_radix ~obj_id radix role =
    Radix.iter
      (fun pno paddr -> if Paddr.is_nvm paddr then claim ~obj_id ~pno paddr.Paddr.idx role)
      radix
  in
  Hashtbl.iter
    (fun oid obj ->
      match obj with
      | Kobj.Pmo p ->
        let role =
          if p.Kobj.pmo_kind = Kobj.Pmo_eternal then "eternal frame" else "runtime page"
        in
        claim_radix ~obj_id:oid p.Kobj.pmo_radix role
      | _ -> ())
    reachable;
  Manager.iter_oroots mgr (fun oid (oroot : Oroot.t) ->
    (match oroot.Oroot.runtime with
    | Some (Kobj.Pmo p) when not (Hashtbl.mem reachable oid) ->
      claim_radix ~obj_id:oid p.Kobj.pmo_radix "detached runtime page"
    | Some _ | None -> ());
    match oroot.Oroot.pages with
    | None -> ()
    | Some cps ->
      Ckpt_page.iter
        (fun pno (cp : Ckpt_page.cp) ->
          let backup = function
            | Some p when Paddr.is_nvm p -> claim ~obj_id:oid ~pno p.Paddr.idx "backup frame"
            | Some _ | None -> ()
          in
          backup cp.Ckpt_page.b1;
          backup cp.Ckpt_page.b2)
        cps);
  let live : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  Buddy.iter_live buddy (fun ~offset ~order ->
    for i = offset to offset + (1 lsl order) - 1 do
      Hashtbl.replace live i ()
    done);
  Hashtbl.iter
    (fun idx () ->
      if not (Hashtbl.mem roles idx) then
        add ~paddr:(Paddr.nvm idx) Error Allocator
          "live NVM block reachable from no subsystem (leak)")
    live;
  Hashtbl.iter
    (fun idx role ->
      if not (Hashtbl.mem live idx) then
        add ~paddr:(Paddr.nvm idx) Error Allocator
          "%s is not a live buddy allocation (dangling frame)" role)
    roles;

  let violations =
    List.stable_sort
      (fun a b -> compare (severity_rank b.severity) (severity_rank a.severity))
      (List.rev !violations)
  in
  let nerr =
    List.length (List.filter (fun v -> v.severity = Error) violations)
  in
  Probe.count "audit.runs" 1;
  Probe.count "audit.violations" (List.length violations);
  if nerr > 0 then Probe.count "audit.errors" nerr;
  {
    version = g;
    objects_checked = !objects_checked;
    pages_checked = !pages_checked;
    violations;
    census = Nvm_census.collect mgr;
  }

let ok r = r.violations = []
let errors r = List.length (List.filter (fun v -> v.severity = Error) r.violations)
let warnings r = List.length (List.filter (fun v -> v.severity = Warning) r.violations)

let pp_violation ppf v =
  Format.fprintf ppf "[%s %s]" (String.uppercase_ascii (severity_name v.severity))
    (subsystem_name v.subsystem);
  (match v.obj_id with Some id -> Format.fprintf ppf " obj=%d" id | None -> ());
  (match v.pno with Some pno -> Format.fprintf ppf " pno=%d" pno | None -> ());
  (match v.paddr with Some p -> Format.fprintf ppf " paddr=%s" (Paddr.to_string p) | None -> ());
  Format.fprintf ppf " %s" v.message

let pp ppf r =
  Format.fprintf ppf "audit @@v%d: %d objects, %d page records checked: " r.version
    r.objects_checked r.pages_checked;
  if ok r then Format.fprintf ppf "OK (0 violations)"
  else
    Format.fprintf ppf "%d error(s), %d warning(s)" (errors r) (warnings r);
  List.iter (fun v -> Format.fprintf ppf "@\n  %a" pp_violation v) r.violations

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let violation_to_json v =
  let opt name = function
    | Some i -> Printf.sprintf ",\"%s\":%d" name i
    | None -> ""
  in
  Printf.sprintf {|{"severity":"%s","subsystem":"%s"%s%s%s,"message":"%s"}|}
    (severity_name v.severity) (subsystem_name v.subsystem)
    (opt "obj_id" v.obj_id) (opt "pno" v.pno)
    (match v.paddr with
    | Some p -> Printf.sprintf ",\"paddr\":\"%s\"" (Paddr.to_string p)
    | None -> "")
    (json_escape v.message)

let to_json r =
  Printf.sprintf
    {|{"version":%d,"objects_checked":%d,"pages_checked":%d,"errors":%d,"warnings":%d,"violations":[%s],"census":%s}|}
    r.version r.objects_checked r.pages_checked (errors r) (warnings r)
    (String.concat "," (List.map violation_to_json r.violations))
    (Nvm_census.to_json r.census)

(* ------------------------------------------------------------------ *)
(* Cross-version diff explorer                                         *)

type object_change = Added | Removed | Mutated
type page_class = Cow_protected | Stop_and_copied | Migrated | Unknown

type diff = {
  from_version : int;
  to_version : int;
  objects : (int * Kobj.kind * object_change) list;
  pages : (int * int * page_class) list;
}

let change_name = function Added -> "added" | Removed -> "removed" | Mutated -> "mutated"

let class_name = function
  | Cow_protected -> "cow-protected"
  | Stop_and_copied -> "stop-and-copied"
  | Migrated -> "migrated"
  | Unknown -> "unknown"

let classify mgr ~to_version pmo_id pno =
  if to_version <> Manager.version mgr then Unknown
  else
    match Manager.find_oroot mgr pmo_id with
    | None -> Unknown
    | Some oroot -> (
      match oroot.Oroot.pages with
      | None -> Unknown
      | Some cps -> (
        match Ckpt_page.find cps pno with
        | None -> Unknown
        | Some cp ->
          if cp.Ckpt_page.b2 = None then Cow_protected
          else if cp.Ckpt_page.b2_ver = to_version then Migrated
          else Stop_and_copied))

let diff mgr eidetic ~from_version ~to_version =
  let archived = Eidetic.versions eidetic in
  if not (List.mem from_version archived) then
    invalid_arg (Printf.sprintf "Audit.diff: version %d not archived" from_version);
  if not (List.mem to_version archived) then
    invalid_arg (Printf.sprintf "Audit.diff: version %d not archived" to_version);
  let table objs =
    let t = Hashtbl.create 128 in
    List.iter (fun (oid, s) -> Hashtbl.replace t oid s) objs;
    t
  in
  let ta = table (Eidetic.objects_at eidetic ~version:from_version) in
  let tb = table (Eidetic.objects_at eidetic ~version:to_version) in
  let changed_pages =
    List.concat_map
      (fun v ->
        if v > from_version && v <= to_version then Eidetic.pages_archived_at eidetic ~version:v
        else [])
      archived
    |> List.sort_uniq compare
  in
  let mutated_pmos = List.sort_uniq compare (List.map fst changed_pages) in
  let objects = ref [] in
  Hashtbl.iter
    (fun oid snap ->
      match Hashtbl.find_opt ta oid with
      | None -> objects := (oid, Snapshot.kind snap, Added) :: !objects
      | Some snap' ->
        if snap <> snap' || List.mem oid mutated_pmos then
          objects := (oid, Snapshot.kind snap, Mutated) :: !objects)
    tb;
  Hashtbl.iter
    (fun oid snap ->
      if not (Hashtbl.mem tb oid) then objects := (oid, Snapshot.kind snap, Removed) :: !objects)
    ta;
  {
    from_version;
    to_version;
    objects = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !objects;
    pages =
      List.map (fun (pmo_id, pno) -> (pmo_id, pno, classify mgr ~to_version pmo_id pno))
        changed_pages;
  }

let pp_diff ppf d =
  let count c = List.length (List.filter (fun (_, _, c') -> c' = c) d.objects) in
  Format.fprintf ppf "diff v%d..v%d: %d object(s) added, %d removed, %d mutated; %d page(s) changed"
    d.from_version d.to_version (count Added) (count Removed) (count Mutated)
    (List.length d.pages);
  List.iter
    (fun (oid, kind, change) ->
      Format.fprintf ppf "@\n  %c obj %d (%s)"
        (match change with Added -> '+' | Removed -> '-' | Mutated -> '~')
        oid (Kobj.kind_name kind))
    d.objects;
  List.iter
    (fun (pmo_id, pno, cls) ->
      Format.fprintf ppf "@\n  * page pmo=%d pno=%d [%s]" pmo_id pno (class_name cls))
    d.pages

let diff_to_json d =
  let obj (oid, kind, change) =
    Printf.sprintf {|{"obj_id":%d,"kind":"%s","change":"%s"}|} oid
      (json_escape (Kobj.kind_name kind))
      (change_name change)
  in
  let page (pmo_id, pno, cls) =
    Printf.sprintf {|{"pmo_id":%d,"pno":%d,"class":"%s"}|} pmo_id pno (class_name cls)
  in
  Printf.sprintf {|{"from_version":%d,"to_version":%d,"objects":[%s],"pages":[%s]}|}
    d.from_version d.to_version
    (String.concat "," (List.map obj d.objects))
    (String.concat "," (List.map page d.pages))
