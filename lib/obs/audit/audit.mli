(** The NVM state auditor ("slsfsck").

    Given a quiesced system, walks the global checkpoint metadata, the
    ORoot/backup tree, the runtime capability tree and the buddy/slab
    allocators and checks the paper's crash-consistency invariants:

    - {b Meta/Journal}: no checkpoint marked in flight, allocator journal
      truncated (both must hold whenever the system is not inside the STW
      pause).
    - {b Captree}: every ORoot's versions are sane ([first_ver <=
      last_seen_ver], no snapshot stamped above the committed global
      version [g]); every object committed at [g] has a restorable
      snapshot whose references resolve to ORoots; no ORoot missed by
      garbage collection.
    - {b Pages}: checkpointed-page records respect the CP/CPP state
      machine — a DRAM-cached runtime keeps both NVM backup halves, an
      NVM (or swapped-out) runtime keeps [b2 = None]; no backup or birth
      stamped above [g]; backup frames live on NVM; replaying the restore
      rule over every record finds a source for every committed page, and
      sealed sources still verify.
    - {b Allocator}: buddy/slab internal invariants hold, and every live
      buddy block is claimed by exactly one subsystem (runtime page,
      backup frame, eternal frame, slab page) — unclaimed blocks are
      leaks, claims without a live block are dangling frames.
    - {b Eternal}: eternal PMOs carry no rollback page records ([§5]:
      they are excluded from rollback), their frames are NVM-resident,
      and the trace ring's backing PMO (if tracing is on) is a reachable
      eternal PMO.

    Every failed check yields a structured {!violation}; a clean system
    yields none.  The same walk prices NVM by subsystem ({!Nvm_census})
    and, with an {!Treesls_ckpt.Eidetic} archive attached, {!diff}
    explains what changed between two committed versions.

    The audit is a pure read: it charges no simulated time and mutates
    nothing, so paranoid callers (bench [--audit]) can run it after every
    commit and every crash/restore. *)

module Eidetic = Treesls_ckpt.Eidetic
module Manager = Treesls_ckpt.Manager
module Kobj = Treesls_cap.Kobj
module Paddr = Treesls_nvm.Paddr

(** {1 Invariant audit} *)

type severity = Info | Warning | Error

type subsystem = Meta | Journal | Captree | Pages | Allocator | Eternal | Wear

type violation = {
  severity : severity;
  subsystem : subsystem;
  obj_id : int option;
  pno : int option;
  paddr : Paddr.t option;
  message : string;
}

type report = {
  version : int;  (** committed global version audited against *)
  objects_checked : int;  (** ORoots visited *)
  pages_checked : int;  (** checkpointed-page records visited *)
  violations : violation list;  (** errors first *)
  census : Nvm_census.t;
}

type wear_thresholds = { waf_warn : float; skew_warn : float; skew_min_pages : int }
(** Wear-health limits: warn when the last checkpoint's write
    amplification exceeds [waf_warn], or when max/mean per-page write
    skew exceeds [skew_warn] (checked only once at least
    [skew_min_pages] NVM pages have been written). *)

val default_wear_thresholds : wear_thresholds
(** [{ waf_warn = 8.0; skew_warn = 50.0; skew_min_pages = 64 }] *)

val run : ?wear:wear_thresholds -> Manager.t -> report
(** Audit a quiesced system.  Bumps the [audit.runs] and
    [audit.violations] metrics counters (and [audit.errors] when any
    violation is [Error]-severity).  [wear] additionally enables
    [Warning]-severity wear-health checks (write amplification, wear
    skew, unattributed NVM writes) — opt-in so a plain audit of a
    healthy system reports zero violations regardless of workload. *)

val ok : report -> bool
(** No violations at all. *)

val errors : report -> int
val warnings : report -> int

val severity_name : severity -> string
val subsystem_name : subsystem -> string
val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit
val to_json : report -> string

(** {1 Cross-version diff explorer} *)

type object_change = Added | Removed | Mutated

type page_class =
  | Cow_protected  (** CP case: NVM runtime, protected by CoW backups *)
  | Stop_and_copied  (** CPP case: DRAM-cached, stop-and-copied each STW *)
  | Migrated
      (** the newest backup half is the runtime frame donated at exactly
          the diff's target version — an NVM-to-DRAM migration *)
  | Unknown
      (** page no longer under checkpoint management, or the diff's
          target version is not the currently committed one *)

type diff = {
  from_version : int;
  to_version : int;
  objects : (int * Kobj.kind * object_change) list;  (** sorted by id *)
  pages : (int * int * page_class) list;
      (** [(pmo id, pno, class)] of pages whose content changed in
          [(from, to]], sorted *)
}

val diff : Manager.t -> Eidetic.t -> from_version:int -> to_version:int -> diff
(** Explain the state delta between two archived versions.  Raises
    [Invalid_argument] if either version is outside the archive window. *)

val change_name : object_change -> string
val class_name : page_class -> string
val pp_diff : Format.formatter -> diff -> unit
val diff_to_json : diff -> string
