(** Per-subsystem census of NVM consumption.

    One read-only walk over the runtime tree, the ORoot/backup tree and
    the allocators, bucketing every NVM page (and the metadata byte
    streams) by the subsystem that owns it — the paper's Table 2 ("NVM
    usage by kind") turned into a queryable structure.  The same buckets
    are what the auditor ({!Audit}) reconciles against the buddy
    allocator's live-block walk, so a page that shows up in no bucket is
    a leak and a page in two buckets is a double-claim.

    [diff] subtracts two censuses field-wise; the CLI's
    [census --baseline] uses it to show what a workload added on top of
    the freshly booted system. *)

type t = {
  version : int;  (** committed checkpoint version at collection time *)
  page_size : int;
  total_pages : int;  (** NVM device size, pages *)
  free_pages : int;
  runtime_pages : int;
      (** NVM frames serving runtime pages of normal PMOs (live in the
          tree, or not yet reclaimed by ORoot GC) *)
  eternal_pages : int;  (** frames of eternal PMOs (never rolled back) *)
  backup_cp_frames : int;
      (** single-backup (CP) frames: pages whose runtime copy lives on
          NVM/SSD and doubles as the consistent copy *)
  backup_cpp_frames : int;
      (** backup-pair (CPP) frames: both NVM halves kept for
          DRAM-cached runtime pages *)
  slab_pages : int;  (** buddy pages carved into small-object slabs *)
  slab_objects : int;  (** live small objects across all slab classes *)
  cp_records : int;  (** checkpointed-page records across all ORoots *)
  snapshot_slots : int;  (** occupied ORoot snapshot slots (a + b) *)
  snapshot_bytes : int;
  sealed_pages : int;  (** pages carrying a backup checksum *)
  allocator_meta_bytes : int;  (** journaled word area (buddy + slab) *)
}

val collect : Treesls_ckpt.Manager.t -> t
(** Walk a quiesced system. Pure read; charges no simulated time. *)

val page_owners : Treesls_ckpt.Manager.t -> (int, string) Hashtbl.t
(** NVM page index -> owner label
    ([role/process/object], e.g. ["runtime/memcached/pmo12"],
    ["backup/redis/obj7"], ["eternal/kernel/pmo3"], ["slab"]) for
    wear-heatmap attribution.  Pure read; charges no simulated time. *)

val accounted_pages : t -> int
(** Pages claimed by some subsystem:
    runtime + eternal + CP + CPP + slab. *)

val unaccounted_pages : t -> int
(** [total - free - accounted]; nonzero means a leak (or double-count),
    which {!Audit.run} pinpoints per frame. *)

val diff : t -> t -> t
(** [diff cur base]: field-wise [cur - base] ([version]/[page_size] are
    taken from [cur]). *)

val rows : t -> (string * int * int) list
(** [(label, count, bytes)] table rows, fixed order; feeds text and JSON
    rendering. *)

val pp : Format.formatter -> t -> unit
val pp_delta : Format.formatter -> t -> unit
(** Like {!pp} but with explicitly signed counts — for printing a {!diff}. *)

val to_json : t -> string
