module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Oroot = Treesls_ckpt.Oroot
module Ckpt_page = Treesls_ckpt.Ckpt_page
module Snapshot = Treesls_ckpt.Snapshot
module Store = Treesls_nvm.Store
module Paddr = Treesls_nvm.Paddr
module Slab = Treesls_nvm.Slab
module Global_meta = Treesls_nvm.Global_meta

type t = {
  version : int;
  page_size : int;
  total_pages : int;
  free_pages : int;
  runtime_pages : int;
  eternal_pages : int;
  backup_cp_frames : int;
  backup_cpp_frames : int;
  slab_pages : int;
  slab_objects : int;
  cp_records : int;
  snapshot_slots : int;
  snapshot_bytes : int;
  sealed_pages : int;
  allocator_meta_bytes : int;
}

(* The checkpointed-page record itself is a 40-byte slab object (the size
   Ckpt_page charges when building one). *)
let cp_record_bytes = 40

let count_nvm_frames radix counter =
  Radix.iter (fun _ paddr -> if Paddr.is_nvm paddr then incr counter) radix

let collect mgr =
  let kernel = Manager.kernel mgr in
  let store = Kernel.store kernel in
  let page_size = (Store.cost store).Treesls_sim.Cost.page_size in
  let runtime_pages = ref 0 and eternal_pages = ref 0 in
  let counter_for (p : Kobj.pmo) =
    if p.Kobj.pmo_kind = Kobj.Pmo_eternal then eternal_pages else runtime_pages
  in
  let reachable = Hashtbl.create 256 in
  Kobj.iter_tree ~root:(Kernel.root kernel) (fun obj ->
    Hashtbl.replace reachable (Kobj.id obj) ();
    match obj with
    | Kobj.Pmo p -> count_nvm_frames p.Kobj.pmo_radix (counter_for p)
    | _ -> ());
  let cp_frames = ref 0 and cpp_frames = ref 0 and cp_records = ref 0 in
  let snapshot_slots = ref 0 and snapshot_bytes = ref 0 in
  Manager.iter_oroots mgr (fun oid (oroot : Oroot.t) ->
    (* objects that left the tree but were not yet GC'd still hold their
       runtime frames; count them with the live runtimes *)
    (match oroot.Oroot.runtime with
    | Some (Kobj.Pmo p) when not (Hashtbl.mem reachable oid) ->
      count_nvm_frames p.Kobj.pmo_radix (counter_for p)
    | Some _ | None -> ());
    let slot = function
      | Some (_, s) ->
        incr snapshot_slots;
        snapshot_bytes := !snapshot_bytes + Snapshot.bytes s
      | None -> ()
    in
    slot oroot.Oroot.slot_a;
    slot oroot.Oroot.slot_b;
    match oroot.Oroot.pages with
    | None -> ()
    | Some cps ->
      Ckpt_page.iter
        (fun _pno (cp : Ckpt_page.cp) ->
          incr cp_records;
          let nvm = function Some p when Paddr.is_nvm p -> 1 | Some _ | None -> 0 in
          let frames = nvm cp.Ckpt_page.b1 + nvm cp.Ckpt_page.b2 in
          if cp.Ckpt_page.b2 = None then cp_frames := !cp_frames + frames
          else cpp_frames := !cpp_frames + frames)
        cps);
  let slab = Store.slab store in
  {
    version = Global_meta.version (Store.meta store);
    page_size;
    total_pages = Store.nvm_pages_total store;
    free_pages = Store.nvm_pages_free store;
    runtime_pages = !runtime_pages;
    eternal_pages = !eternal_pages;
    backup_cp_frames = !cp_frames;
    backup_cpp_frames = !cpp_frames;
    slab_pages = List.length (Slab.slab_pages slab);
    slab_objects = Slab.live slab;
    cp_records = !cp_records;
    snapshot_slots = !snapshot_slots;
    snapshot_bytes = !snapshot_bytes;
    sealed_pages = Store.sealed_pages store;
    allocator_meta_bytes = 8 * Store.allocator_meta_words store;
  }

(* NVM page index -> human-readable owner label, for wear-heatmap
   attribution: role (runtime/eternal/backup/detached/slab), owning
   process subtree, and object id.  Same claim order as the audit's roles
   table (slab, reachable PMOs, detached runtimes, backup frames) with
   first-claim-wins for pages shared between views. *)
let page_owners mgr =
  let kernel = Manager.kernel mgr in
  let store = Kernel.store kernel in
  let owners : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let claim idx label = if not (Hashtbl.mem owners idx) then Hashtbl.add owners idx label in
  let claim_radix radix label =
    Radix.iter (fun _ paddr -> if Paddr.is_nvm paddr then claim paddr.Paddr.idx label) radix
  in
  List.iter (fun off -> claim off "slab") (Slab.slab_pages (Store.slab store));
  (* object id -> owning process name (first process wins for shared
     objects; objects reachable only from the root stay "kernel") *)
  let proc_of = Hashtbl.create 256 in
  List.iter
    (fun (p : Kernel.process) ->
      Kobj.iter_tree ~root:p.Kernel.cg (fun obj ->
          let oid = Kobj.id obj in
          if not (Hashtbl.mem proc_of oid) then Hashtbl.add proc_of oid p.Kernel.pname))
    (Kernel.processes kernel);
  let owner_of oid = Option.value ~default:"kernel" (Hashtbl.find_opt proc_of oid) in
  Kobj.iter_tree ~root:(Kernel.root kernel) (fun obj ->
      match obj with
      | Kobj.Pmo p ->
        let role = if p.Kobj.pmo_kind = Kobj.Pmo_eternal then "eternal" else "runtime" in
        claim_radix p.Kobj.pmo_radix
          (Printf.sprintf "%s/%s/pmo%d" role (owner_of (Kobj.id obj)) p.Kobj.pmo_id)
      | _ -> ());
  Manager.iter_oroots mgr (fun oid (oroot : Oroot.t) ->
      (match oroot.Oroot.runtime with
      | Some (Kobj.Pmo p) ->
        claim_radix p.Kobj.pmo_radix (Printf.sprintf "detached/pmo%d" p.Kobj.pmo_id)
      | Some _ | None -> ());
      match oroot.Oroot.pages with
      | None -> ()
      | Some cps ->
        Ckpt_page.iter
          (fun _pno (cp : Ckpt_page.cp) ->
            let backup = function
              | Some pa when Paddr.is_nvm pa ->
                claim pa.Paddr.idx (Printf.sprintf "backup/%s/obj%d" (owner_of oid) oid)
              | Some _ | None -> ()
            in
            backup cp.Ckpt_page.b1;
            backup cp.Ckpt_page.b2)
          cps);
  owners

let accounted_pages t =
  t.runtime_pages + t.eternal_pages + t.backup_cp_frames + t.backup_cpp_frames
  + t.slab_pages

let unaccounted_pages t = t.total_pages - t.free_pages - accounted_pages t

let diff cur base =
  {
    version = cur.version;
    page_size = cur.page_size;
    total_pages = cur.total_pages - base.total_pages;
    free_pages = cur.free_pages - base.free_pages;
    runtime_pages = cur.runtime_pages - base.runtime_pages;
    eternal_pages = cur.eternal_pages - base.eternal_pages;
    backup_cp_frames = cur.backup_cp_frames - base.backup_cp_frames;
    backup_cpp_frames = cur.backup_cpp_frames - base.backup_cpp_frames;
    slab_pages = cur.slab_pages - base.slab_pages;
    slab_objects = cur.slab_objects - base.slab_objects;
    cp_records = cur.cp_records - base.cp_records;
    snapshot_slots = cur.snapshot_slots - base.snapshot_slots;
    snapshot_bytes = cur.snapshot_bytes - base.snapshot_bytes;
    sealed_pages = cur.sealed_pages - base.sealed_pages;
    allocator_meta_bytes = cur.allocator_meta_bytes - base.allocator_meta_bytes;
  }

let rows t =
  [
    ("runtime pages", t.runtime_pages, t.runtime_pages * t.page_size);
    ("backup frames (CP)", t.backup_cp_frames, t.backup_cp_frames * t.page_size);
    ("backup frames (CPP)", t.backup_cpp_frames, t.backup_cpp_frames * t.page_size);
    ("eternal PMO pages", t.eternal_pages, t.eternal_pages * t.page_size);
    ("slab pages", t.slab_pages, t.slab_pages * t.page_size);
    ("object snapshots", t.snapshot_slots, t.snapshot_bytes);
    ("page records", t.cp_records, t.cp_records * cp_record_bytes);
    ("allocator metadata (words)", t.allocator_meta_bytes / 8, t.allocator_meta_bytes);
    ("free pages", t.free_pages, t.free_pages * t.page_size);
    ("unaccounted pages", unaccounted_pages t, unaccounted_pages t * t.page_size);
  ]

let pp_rows ~signed ppf t =
  let c n = if signed then Printf.sprintf "%+d" n else string_of_int n in
  List.iter
    (fun (label, count, bytes) ->
      Format.fprintf ppf "  %-28s %10s %14s B@\n" label (c count) (c bytes))
    (rows t);
  Format.fprintf ppf "  %-28s %10s %14s@\n" "slab objects" (c t.slab_objects) "-";
  Format.fprintf ppf "  %-28s %10s %14s@\n" "sealed backup pages" (c t.sealed_pages) "-"

let pp ppf t =
  Format.fprintf ppf "NVM census @@v%d: %d pages x %d B (%d free, %d accounted)@\n"
    t.version t.total_pages t.page_size t.free_pages (accounted_pages t);
  pp_rows ~signed:false ppf t

let pp_delta ppf t =
  Format.fprintf ppf "NVM census delta @@v%d (signed, vs baseline):@\n" t.version;
  pp_rows ~signed:true ppf t

let to_json t =
  Printf.sprintf
    {|{"version":%d,"page_size":%d,"total_pages":%d,"free_pages":%d,"runtime_pages":%d,"eternal_pages":%d,"backup_cp_frames":%d,"backup_cpp_frames":%d,"slab_pages":%d,"slab_objects":%d,"cp_records":%d,"snapshot_slots":%d,"snapshot_bytes":%d,"sealed_pages":%d,"allocator_meta_bytes":%d,"accounted_pages":%d,"unaccounted_pages":%d}|}
    t.version t.page_size t.total_pages t.free_pages t.runtime_pages t.eternal_pages
    t.backup_cp_frames t.backup_cpp_frames t.slab_pages t.slab_objects t.cp_records
    t.snapshot_slots t.snapshot_bytes t.sealed_pages t.allocator_meta_bytes
    (accounted_pages t) (unaccounted_pages t)
