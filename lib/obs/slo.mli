(** SLO watchdog: declarative rules over the {!Tseries} black box.

    Rules are evaluated against the newest sample at every checkpoint
    commit (from {!Probe.tseries_sample}); a violated rule emits a
    structured alert into a bounded log, an [slo.alert] trace instant
    and the [slo.alerts] metric, and the health report is printed by
    [treesls doctor] (where [--strict] turns alerts into a non-zero
    exit).

    {2 Rule grammar}

    {v
rule  := expr cmp expr
expr  := term ('*' term)*
term  := number | 'interval' | name | func '(' name ')' | '(' expr ')'
func  := p50 | p99 | value | rate | delta | ewma | max | mean
cmp   := < | <= | > | >= | ==
    v}

    [interval] is the current checkpoint interval in ns.  Names resolve
    through a short-alias table — [enq2vis] → [req.enq2vis] (p50/p99
    read the derived [.p50_ns]/[.p99_ns] columns), [waf] →
    [ckpt.nvm.waf] scaled /100 to the true ratio, [ring.dropped] →
    [extsync.ring.dropped], [stw] → [ckpt.stw_ns], [dirty_pct] →
    [ckpt.dirty_fraction_pct] — and otherwise name tseries columns
    directly.  [rate] is per-second over the last two samples; [delta]
    likewise; [ewma] uses alpha 0.3; [max]/[mean] use a 16-sample
    window.  A rule whose operands have no data yet (missing column,
    unknown interval) is skipped, not violated. *)

type rule

val rule_of_string : string -> (rule, string) result
val rule_to_string : rule -> string

val default_rules : rule list
(** [p99(enq2vis) < 2*interval], [waf < 3], [rate(ring.dropped) == 0]. *)

val default_rule_texts : string list

type alert = {
  al_seq : int;
  al_version : int;
  al_ts_ns : int;
  al_rule : string;
  al_value : float;  (** evaluated left-hand side *)
  al_bound : float;  (** evaluated right-hand side *)
}

type t

val create : ?alert_cap:int -> ?rules:rule list -> unit -> t
val rules : t -> rule list
val set_rules : t -> rule list -> unit
(** Replaces the rule set and resets per-rule statistics. *)

val check : t -> Tseries.t -> interval_ns:int option -> alert list
(** Evaluate every rule against the newest sample; returns (and retains)
    the alerts fired by this sample. *)

val alerts : t -> alert list
(** Retained alerts, oldest first (bounded by [alert_cap]). *)

val alerts_total : t -> int
val checks : t -> int
val healthy : t -> bool

val rule_report : t -> (string * int * int * alert option) list
(** Per rule: (text, evaluations, fires, last alert). *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
