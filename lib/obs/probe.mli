(** Zero-cost-when-disabled observability hooks.

    The kernel, checkpoint manager, NVM allocator/journal and external
    synchrony ring are instrumented through this module's static emitters
    rather than holding a trace handle each: call sites pay one load and
    branch when no probe is installed, and emitters never advance the
    simulated clock, so observability cannot perturb a measurement.

    A probe bundles a {!Trace} ring, a {!Metrics} registry and the
    {!Treesls_sim.Clock} that timestamps both.  [Treesls.System.boot]
    creates and installs one per system (last boot wins — the simulator is
    single-threaded).  Metrics are always collected while a probe is
    installed; trace events additionally require {!set_tracing}, and the
    per-operation firehose ([nvm.alloc], [nvm.txn], [ipc.call]) also
    requires {!set_verbose}. *)

type t

val create : ?capacity:int -> clock:Treesls_sim.Clock.t -> unit -> t
(** [capacity] is the trace ring size (default 4096 events). *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

val clock : t -> Treesls_sim.Clock.t
val trace : t -> Trace.t
val metrics : t -> Metrics.t

val set_tracing : t -> bool -> unit
val tracing : t -> bool
val set_verbose : t -> bool -> unit
val verbose : t -> bool

val set_backing_pmo : t -> int -> unit
val backing_pmo : t -> int option
(** Id of the eternal PMO reserved as the ring's NVM backing (set by
    [System.enable_tracing]); [None] while tracing is off. *)

val tracing_enabled : unit -> bool

(** {2 Trace emitters} — no-ops (returning 0 where applicable) unless a
    probe is installed with tracing on. *)

val enter : ?args:(string * string) list -> string -> int
val exit : ?args:(string * string) list -> int -> unit
(** Open/close a nested span.  [exit 0] is a no-op, so call sites need no
    disabled-check of their own. *)

val instant : ?args:(string * string) list -> string -> unit

val span_at : ?args:(string * string) list -> string -> ts_ns:int -> dur_ns:int -> unit
(** Record a span with explicit timestamps (overlapping/parallel work). *)

val enter_v : ?args:(string * string) list -> string -> int
val instant_v : ?args:(string * string) list -> string -> unit
(** Verbose-tier variants: additionally gated on {!set_verbose}. *)

val crash_mark : unit -> unit
(** Close all open spans as [aborted=true] and record a ["crash"] instant —
    called by the checkpoint manager when a power failure is injected. *)

(** {2 Metrics emitters} — active whenever a probe is installed. *)

val count : string -> int -> unit
val gauge : string -> int -> unit
val observe : string -> int -> unit
