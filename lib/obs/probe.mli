(** Zero-cost-when-disabled observability hooks.

    The kernel, checkpoint manager, NVM allocator/journal and external
    synchrony ring are instrumented through this module's static emitters
    rather than holding a trace handle each: call sites pay one load and
    branch when no probe is installed, and emitters never advance the
    simulated clock, so observability cannot perturb a measurement.

    A probe bundles a {!Trace} ring, a {!Metrics} registry and the
    {!Treesls_sim.Clock} that timestamps both.  [Treesls.System.boot]
    creates and installs one per system (last boot wins — the simulator is
    single-threaded).  Metrics are always collected while a probe is
    installed; trace events additionally require {!set_tracing}, and the
    per-operation firehose ([nvm.alloc], [nvm.txn], [ipc.call]) also
    requires {!set_verbose}. *)

type t

val create : ?capacity:int -> ?tseries_capacity:int -> clock:Treesls_sim.Clock.t -> unit -> t
(** [capacity] is the trace ring size (default 4096 events);
    [tseries_capacity] the black-box sample ring size
    (default {!Tseries.default_capacity}). *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

val clock : t -> Treesls_sim.Clock.t
val trace : t -> Trace.t
val metrics : t -> Metrics.t

val rtrace : t -> Rtrace.t
(** Request-causality tracker (see {!Rtrace}); always collecting while
    the probe is installed, like metrics. *)

val wearmap : t -> Wearmap.t
(** NVM write/wear telemetry (see {!Wearmap}); always collecting while
    the probe is installed, like metrics. *)

val rto : t -> Rto.t
(** Recovery profiler / crash flight recorder (see {!Rto}); always
    collecting while the probe is installed, like metrics. *)

val tseries : t -> Tseries.t
(** Crash-surviving metrics time-series (see {!Tseries}); sampled at
    every checkpoint commit via {!tseries_sample}. *)

val slo : t -> Slo.t
(** SLO watchdog evaluated on every tseries sample (see {!Slo}). *)

val set_sample_hook : t -> (unit -> unit) -> unit
(** Invoked after every tseries sample and SLO check — the adaptive
    checkpoint-interval controller's feedback edge ([System.boot] sets
    it when [State.features.adaptive_interval] is on). *)

val set_tracing : t -> bool -> unit
val tracing : t -> bool
val set_verbose : t -> bool -> unit
val verbose : t -> bool

val set_backing_pmo : t -> int -> unit
val backing_pmo : t -> int option
(** Id of the eternal PMO reserved as the ring's NVM backing (set by
    [System.enable_tracing]); [None] while tracing is off. *)

val set_wear_backing_pmo : t -> int -> unit
val wear_backing_pmo : t -> int option
(** Id of the eternal PMO reserved as the wearmap's NVM backing (set by
    [System.ensure_wear_backing]); [None] until reserved. *)

val set_tseries_backing_pmo : t -> int -> unit
val tseries_backing_pmo : t -> int option
(** Id of the eternal PMO reserved as the tseries ring's NVM backing (set
    by [System.ensure_tseries_backing]); [None] until reserved. *)

val tracing_enabled : unit -> bool

(** {2 Trace emitters} — no-ops (returning 0 where applicable) unless a
    probe is installed with tracing on. *)

val enter : ?args:(string * string) list -> string -> int
val exit : ?args:(string * string) list -> int -> unit
(** Open/close a nested span.  [exit 0] is a no-op, so call sites need no
    disabled-check of their own. *)

val instant : ?args:(string * string) list -> string -> unit

val span_at : ?args:(string * string) list -> string -> ts_ns:int -> dur_ns:int -> unit
(** Record a span with explicit timestamps (overlapping/parallel work). *)

val enter_v : ?args:(string * string) list -> string -> int
val instant_v : ?args:(string * string) list -> string -> unit
(** Verbose-tier variants: additionally gated on {!set_verbose}. *)

val crash_mark : unit -> unit
(** Close all open spans as [aborted=true] and record a ["crash"] instant —
    called by the checkpoint manager when a power failure is injected.
    Also finalizes every pending request as dropped (see {!Rtrace.on_crash}),
    independent of whether the trace ring is recording. *)

(** {2 RTO / flight-recorder emitters} — active whenever a probe is
    installed (like metrics); they read the simulated clock but never
    advance it.  Call sites: [Restore.run] opens/aborts/completes the
    profile, [Restore.run_inner] brackets its phases, and
    [System.recover] brackets service re-setup then seals the record
    (emitting the [restore.*] metrics family). *)

val rto_begin_restore : unit -> unit
(** Open a recovery profile, capturing the pre-crash tail of the trace
    ring for the flight recorder. *)

val rto_phase_begin : string -> unit
val rto_phase_end : unit -> unit
(** Bracket a named restore phase (phases nest; exclusive accounting). *)

val rto_note_kind : string -> int -> unit
(** Charge materialisation nanoseconds to an object-kind name. *)

val rto_restore_done :
  version:int ->
  restored_objects:int ->
  dropped_objects:int ->
  pages_restored:int ->
  pages_dropped:int ->
  unit
(** [Restore.run] succeeded with this report; the profile stays open for
    service re-setup. *)

val rto_abort : unit -> unit
(** [Restore.run] raised: discard the building profile. *)

val rto_recovered : unit -> unit
(** Seal the profile into the crash-surviving [last] record and emit the
    [restore.*] metrics (total/downtime/untracked, per-phase timers,
    object/page counts). *)

(** {2 Request-causality emitters} — active whenever a probe is installed
    (like metrics); host-time cost only.  Call sites: [Kv_app.call] marks
    arrival, [Ipc.call] marks handling, [Net_server.send]/[Ring.append]
    mark enqueue/shed, and [Ring.on_checkpoint] marks release with the
    committing version. *)

val req_arrive : origin:string -> int
(** New externally-driven request becomes the ambient current one;
    returns its id (0 with no probe). *)

val req_current : unit -> int
val req_handled : unit -> unit
val req_ipc : unit -> unit

val req_enqueued : unit -> int
(** Stamp the current request's enqueue-on-ring time; returns its id so
    the ring can remember which request each slot's reply belongs to. *)

val req_shed : id:int -> unit
(** The ring was full; the reply for request [id] was dropped at enqueue. *)

val req_dropped : id:int -> unit
(** Request [id]'s enqueued reply was discarded (restore found it past
    [visible_writer]). *)

val req_released : id:int -> version:int -> unit
(** Checkpoint [version]'s commit made request [id]'s reply visible.
    Feeds [req.enq2vis_ns]/[req.e2e_ns] metrics; with tracing on, also
    emits a retroactive ["req"] span and a ["req.flow"] flow arrow ending
    inside the releasing [ckpt.stw] slice. *)

val ckpt_committed : version:int -> stw_t0:int -> stw_t1:int -> unit
(** Record the just-committed checkpoint's STW window so release flow
    arrows can bind to its trace slice.  Called by [Checkpoint.run]
    before the post-commit callbacks that publish ring entries. *)

(** {2 Wear emitters} — active whenever a probe is installed (like
    metrics); host-time cost only.  Call sites: [Device.write]/
    [copy_page]/[zero_page] record physical page writes, [Warea.commit]
    notes journal bytes, [Checkpoint.run] notes snapshot bytes, and
    [Store.copy_page] reconciles charged copy time with copied bytes. *)

val wear_page_write : page:int -> bytes:int -> unit
(** A physical write of [bytes] to NVM page [page], attributed to the
    ambient {!Wearmap} writer context. *)

val wear_note : subsystem:string -> bytes:int -> unit
(** Modeled metadata bytes with no single backing page. *)

val wear_copy_charged : ns:int -> unit
(** A whole-page NVM copy was charged [ns] by the cost model. *)

val wear_total_bytes : unit -> int
(** Cumulative physical NVM bytes recorded so far (0 with no probe). *)

val wear_counter_sample : unit -> unit
(** With tracing on, record a [nvm.bytes_written] Perfetto counter sample
    carrying the cumulative per-subsystem byte totals. *)

(** {2 Tseries / SLO emitters} — active whenever a probe is installed
    (like metrics). *)

val tseries_key_cols : string list
(** The headline signals mirrored onto the live trace as a ["tseries"]
    counter track when tracing is on. *)

val req_pending_enqueued : unit -> int
(** {!Rtrace.pending_enqueued} of the installed probe (0 with none) —
    the controller's burst-pressure poll. *)

val tseries_sample : version:int -> stw_ns:int -> interval_ns:int option -> unit
(** Record one black-box sample for the just-committed checkpoint
    [version]: the full metrics registry (counters, gauges, per-timer
    count/p99) plus the derived signals ([ckpt.stw_ns] of this commit
    and the windowed enq2vis p50/p99), then run the SLO watchdog
    ([interval_ns] is the current checkpoint interval, for rules using
    [interval]) and finally the sample hook.  Called by
    [Checkpoint.run] after commit, once the post-commit gauges are
    set. *)

(** {2 Metrics emitters} — active whenever a probe is installed. *)

val count : string -> int -> unit
val gauge : string -> int -> unit
val observe : string -> int -> unit
