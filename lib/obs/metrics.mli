(** Named registry of counters, gauges and histogram-backed timers.

    Like the trace ring, a registry registered with the checkpoint manager
    is modelled as eternal-PMO state: its values survive crash/restore
    rather than rolling back with the kernel tree. *)

type t

val create : unit -> t

val add : t -> string -> int -> unit
(** Increment the named counter (created at zero on first use). *)

val set_gauge : t -> string -> int -> unit

val observe : t -> string -> int -> unit
(** Record a duration (ns) into the named {!Treesls_util.Histogram}-backed
    timer. *)

val counter_value : t -> string -> int
val gauge_value : t -> string -> int
(** 0 when the name was never touched. *)

val histogram : t -> string -> Treesls_util.Histogram.t option
(** The live histogram behind the named timer — read-only by convention;
    lets a harness {!Treesls_util.Histogram.merge} per-run timers into an
    aggregate without re-observing raw samples. *)

val timer_names : t -> string list
(** Names of all timers observed so far, sorted. *)

type timer_summary = {
  tm_count : int;
  tm_total_ns : int;
  tm_mean_ns : float;
  tm_p50_ns : int;
  tm_p99_ns : int;
  tm_max_ns : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  timers : (string * timer_summary) list;
}
(** Point-in-time copy, each section sorted by name. *)

val snapshot : t -> snapshot
val reset : t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
val snapshot_to_json : snapshot -> string
