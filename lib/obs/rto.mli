(** Restore-time (RTO) profiler and crash flight recorder.

    Answers two questions the steady-state observability stack cannot:
    {e where did the recovery time go} (a named-phase breakdown of
    [Restore.run] and service re-setup, charged by the existing simulated
    clock, tiling the total restore time) and {e what was the system doing
    when it died} (the pre-crash tail of the eternal trace ring, merged
    with the recovery spans into one Perfetto timeline).

    The profiler lives in the probe and is modelled — like the metrics
    registry and the trace ring — as eternal-PMO state: the [last] record
    survives the crash/restore it describes.  It only ever {e reads} the
    simulated clock, so profiling cannot perturb the restore under
    measurement.

    Phase accounting is exclusive: a nested phase's time is subtracted
    from its parent, so [r_phases] plus [r_untracked_ns] sums to
    [r_total_ns] exactly (the 1%-untracked gate in [exp_rto] keeps the
    instrumentation honest as restore grows new steps). *)

type phase_span = { ps_name : string; ps_t0 : int; ps_t1 : int }
(** Inclusive [begin, end) interval of one phase execution, for the
    flight timeline (a phase entered twice yields two spans). *)

type record = {
  r_index : int;  (** 1-based count of successful recoveries *)
  r_version : int;  (** checkpoint version restored to *)
  r_crash_ns : int;  (** crash instant; -1 if no crash was marked *)
  r_begin_ns : int;  (** [Restore.run] entry *)
  r_end_ns : int;  (** recovery sealed (services re-set-up) *)
  r_total_ns : int;  (** [r_end_ns - r_begin_ns] *)
  r_downtime_ns : int;  (** [r_end_ns - r_crash_ns] (total if no crash) *)
  r_phases : (string * int) list;
      (** exclusive ns per phase, in first-entered order *)
  r_untracked_ns : int;  (** [r_total_ns] minus the phase sum *)
  r_per_kind_ns : (string * int) list;  (** materialisation ns by object kind *)
  r_spans : phase_span list;  (** inclusive spans, oldest first *)
  r_restored_objects : int;
  r_dropped_objects : int;
  r_pages_restored : int;
  r_pages_dropped : int;
  mutable r_ttfr_ns : int;
      (** crash to first post-recovery request arrival; -1 until one
          arrives *)
  r_pre_crash : Trace.event list;
      (** tail of the eternal trace ring captured at restore entry *)
}

type t

val create : unit -> t

val last : t -> record option
val count : t -> int
(** Successful recoveries sealed so far. *)

val in_restore : t -> bool

(** {2 Lifecycle} — driven by [Probe]'s [rto_*] wrappers. *)

val note_crash : t -> now:int -> unit
(** The crash instant (from [Probe.crash_mark]); also stops any pending
    time-to-first-request measurement. *)

val begin_restore : t -> now:int -> pre_crash:Trace.event list -> unit
(** Open a building profile, capturing the pre-crash ring tail.  Replaces
    any profile left open by a failed earlier attempt. *)

val phase_begin : t -> now:int -> string -> unit
val phase_end : t -> now:int -> unit
(** Bracket a named phase.  Phases nest; [phase_end] closes the innermost
    open one (unmatched ends are ignored). *)

val note_kind : t -> string -> int -> unit
(** Charge [ns] of object materialisation to a kind name. *)

val restore_done :
  t ->
  version:int ->
  restored_objects:int ->
  dropped_objects:int ->
  pages_restored:int ->
  pages_dropped:int ->
  unit
(** [Restore.run] succeeded; stash its report.  The profile stays open so
    service re-setup ([ring_reattach]) is still charged. *)

val abort : t -> unit
(** [Restore.run] raised: discard the building profile (the next attempt
    opens a fresh one; the crash instant is kept). *)

val recovered : t -> now:int -> record option
(** Seal the profile into [last] and return it; [None] if no successful
    [restore_done] preceded (nothing trustworthy to record). *)

val note_first_request : t -> now:int -> int option
(** First external request after a recovery: stamp [r_ttfr_ns] and return
    it; [None] if no recovery is awaiting a first request. *)

(** {2 Export} *)

val pp : Format.formatter -> record -> unit
val to_json : record -> string

val flight_to_perfetto_json : ?pid:int -> record -> string
(** One Perfetto timeline: the captured pre-crash events on a track named
    ["pre-crash"], the crash instant marker plus the recovery-phase spans
    on a track named ["recovery"]. *)
