(** Fixed-capacity ring buffer of structured trace events.

    The buffer is the simulator's analogue of a trace ring living in an
    eternal PMO: once created it never grows, wraps around overwriting the
    oldest events, and — because it is reachable from the checkpoint
    manager rather than the (volatile) runtime kernel tree — its contents
    survive a simulated crash and restore.  Timestamps are simulated
    nanoseconds from {!Treesls_sim.Clock}.

    Span events nest: {!begin_span} pushes onto an open-span stack, and the
    event is recorded at {!end_span} time carrying the begin timestamp, the
    duration, and the enclosing span's id.  Instants record immediately
    under the currently open span. *)

type phase = Complete | Instant | Flow_start | Flow_end | Counter

type event = {
  seq : int;  (** global record index, monotonically increasing *)
  name : string;  (** e.g. ["ckpt.captree"] *)
  cat : string;  (** name prefix before the first ['.'] *)
  ph : phase;
  ts_ns : int;  (** span begin (or instant) time *)
  dur_ns : int;  (** 0 for instants *)
  id : int;  (** span id; 0 for instants; flow correlation id for flows *)
  parent : int;  (** enclosing span id; 0 at top level *)
  args : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] (default 4096) events. *)

val begin_span : t -> now:int -> ?args:(string * string) list -> string -> int
(** Open a span; returns its id (pass to {!end_span}). *)

val end_span : t -> now:int -> ?args:(string * string) list -> int -> unit
(** Close an open span and record it; [args] are appended to the begin-time
    args.  Unknown ids are ignored. *)

val instant : t -> now:int -> ?args:(string * string) list -> string -> unit

val complete : t -> ?args:(string * string) list -> string -> ts_ns:int -> dur_ns:int -> unit
(** Record a span with explicit timestamps — used for work that is modelled
    as overlapping the leader (e.g. the parallel hybrid copy), where
    enter/exit around the host-order code would measure nothing. *)

val flow_start : t -> ?args:(string * string) list -> flow_id:int -> string -> ts_ns:int -> unit
(** Start of a flow arrow ([ph:"s"]).  Both ends of a flow share [name]
    and [flow_id]; the viewer attaches each end to the slice enclosing
    its timestamp, drawing an arrow between the two slices — used to link
    a request span to the [ckpt.stw] span that released its reply. *)

val flow_end : t -> ?args:(string * string) list -> flow_id:int -> string -> ts_ns:int -> unit
(** End of a flow arrow ([ph:"f"], with [bp:"e"] so it binds to the
    enclosing slice). *)

val counter : t -> now:int -> string -> values:(string * int) list -> unit
(** Record a counter sample ([ph:"C"]): one named track per [values] key,
    rendered as stacked counter tracks in the Perfetto UI — used for the
    per-subsystem NVM bytes-written series sampled at each checkpoint. *)

val abort_open : t -> now:int -> unit
(** Close every open span with an [aborted=true] arg — called when a crash
    ends them mid-flight. *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int
val total : t -> int
(** Events currently retained / ever recorded. *)

val dropped : t -> int
(** Events lost to wraparound ([total - length]). *)

val capacity : t -> int
val open_spans : t -> int
val clear : t -> unit

val to_perfetto_json :
  ?pid:int ->
  ?tid:int ->
  ?proc_name:string ->
  ?track_name:string ->
  ?req_track_name:string ->
  t ->
  string
(** Chrome/Perfetto [trace_event] JSON ([{"traceEvents":[...]}]): spans as
    ["ph":"X"] complete events, instants as ["ph":"i"], flows as
    ["ph":"s"]/["ph":"f"]; [ts]/[dur] in microseconds with nanosecond
    precision.  The stream is prefixed with ["ph":"M"] metadata events
    naming the process ([proc_name], default ["treesls"]) and the main
    track ([track_name], default ["kernel"]); request-causality events
    (category ["req"]) are routed to their own track [tid+1] named
    [req_track_name] (default ["requests"]) when present.  Load in
    Perfetto UI or [chrome://tracing]. *)

val event_json : pid:int -> tid:int -> Buffer.t -> event -> unit
(** Append one event's trace_event JSON object (no surrounding comma) —
    the building block {!to_perfetto_json} uses, exported so the RTO
    flight recorder can re-emit captured pre-crash events onto its own
    track. *)

val meta_process_name : Buffer.t -> pid:int -> string -> unit
val meta_thread_name : Buffer.t -> pid:int -> tid:int -> string -> unit
(** Append a Perfetto ["ph":"M"] [process_name]/[thread_name] metadata
    event (no surrounding comma). *)

val pp_event : Format.formatter -> event -> unit

val json_escape : string -> string
(** JSON string-body escaping, shared with {!Metrics}'s JSON dump. *)
