(** Request-causality tracking for externally-driven operations.

    Every external request (e.g. a KV op arriving at a server app) gets a
    request id at {!arrive}; the id is carried implicitly while the
    single-threaded simulation handles it (the "ambient current" request),
    stamped when its reply is enqueued on an extsync ring, and resolved
    when a checkpoint commit advances [visible_writer] past the reply —
    recording {e which} commit version released it.  The timeline
    arrive → handled → enqueued → visible is what external synchrony
    trades for persistence; this module measures the trade.

    Pure data layer: all timestamps are caller-supplied (simulated
    nanoseconds), no dependency on kernel/extsync/ckpt — those layers
    call in through [Probe.req_*] wrappers. *)

type outcome =
  | Pending  (** in flight *)
  | Internal  (** never reached an extsync ring; no externally visible output *)
  | Released  (** reply made visible by a checkpoint commit *)
  | Shed  (** ring full; reply dropped at enqueue (client must retry) *)
  | Dropped  (** lost to a crash before its releasing commit *)

val outcome_name : outcome -> string

type req = {
  rq_id : int;
  rq_origin : string;  (** e.g. ["kv.set"] *)
  rq_arrive_ns : int;
  mutable rq_handled_ns : int;  (** -1 until the IPC handler returned *)
  mutable rq_enqueued_ns : int;  (** -1 until the reply hit the ring *)
  mutable rq_visible_ns : int;  (** -1 until released *)
  mutable rq_commit_ver : int;  (** checkpoint version that released it; 0 = none *)
  mutable rq_ipc_calls : int;
  mutable rq_outcome : outcome;
}

type t

val create : ?done_capacity:int -> unit -> t
(** [done_capacity] bounds the ring of completed-request records kept for
    [completed]/CLI inspection (default 1024).  Histograms and counters
    aggregate over {e all} requests regardless. *)

val arrive : t -> now:int -> origin:string -> int
(** Start a new request and make it current.  A previous current request
    that never enqueued output is finalized as [Internal]. *)

val current_id : t -> int
(** Id of the ambient current request; 0 when none. *)

val find_live : t -> int -> req option
val handled : t -> now:int -> unit
(** Stamp the current request's handled time (first call wins). *)

val note_ipc : t -> unit

val enqueued : t -> now:int -> int
(** Stamp the current request's ring-enqueue time and return its id
    (0 when no current request — e.g. an internally generated send). *)

val released : t -> now:int -> id:int -> version:int -> req option
(** Checkpoint [version]'s commit advanced [visible_writer] past this
    request's reply at time [now].  Records enqueue→visible and
    arrive→visible latencies; returns the finished record. *)

val shed : t -> id:int -> bool
val drop : t -> id:int -> bool

val on_crash : t -> unit
(** Finalize every pending request as [Dropped] (post-crash state rolls
    back to the last commit; unreleased output never existed). *)

val on_commit : t -> version:int -> stw_t0:int -> stw_t1:int -> unit
(** Note the most recent checkpoint commit and its STW window, so release
    events can bind Perfetto flow arrows to the [ckpt.stw] span. *)

val last_commit : t -> (int * int * int) option
(** [(version, stw_t0, stw_t1)] of the most recent commit. *)

val live_count : t -> int

val pending_enqueued : t -> int
(** Live requests whose reply is parked on an extsync ring awaiting the
    next commit — the burst-pressure signal the adaptive
    checkpoint-interval controller polls between operations. *)

val released_count : t -> int
val internal_count : t -> int
val shed_count : t -> int
val dropped_count : t -> int
val completed_total : t -> int

val completed : t -> req list
(** Most recent completed requests, newest first (bounded by
    [done_capacity]). *)

val per_version : t -> (int * int) list
(** Released-request count per releasing commit version, newest first
    (bounded window). *)

type summary = {
  s_count : int;
  s_p50_ns : int;
  s_p95_ns : int;
  s_p99_ns : int;
  s_mean_ns : float;
  s_max_ns : int;
}

val enq2vis_summary : t -> summary
(** Enqueue→visible latency: the pure external-synchrony delay. *)

val e2e_summary : t -> summary
(** Arrive→visible latency: what the client observes. *)

val origins : t -> string list
(** Every origin that has released at least one request, sorted. *)

val summaries_prefix : t -> prefix:string -> summary * summary
(** [(enq2vis, e2e)] summaries over every origin starting with [prefix]
    (e.g. ["t3/"] for tenant 3's ops, [""] for everything).  Built by
    merging the per-origin histograms, so percentiles are exact to bucket
    resolution. *)

val pp_req : Format.formatter -> req -> unit
