module Clock = Treesls_sim.Clock

type t = {
  clock : Clock.t;
  trace : Trace.t;
  metrics : Metrics.t;
  mutable tracing : bool;
  mutable verbose : bool;
  mutable backing_pmo : int option;
}

(* The simulator is single-threaded, so "the installed probe" is a single
   slot; booting a new system installs its probe (last boot wins).  Every
   emitter below is a no-op costing one load + branch when nothing is
   installed — the instrumented hot paths pay nothing measurable, and
   never any *simulated* time. *)
let current : t option ref = ref None

let create ?(capacity = 4096) ~clock () =
  {
    clock;
    trace = Trace.create ~capacity ();
    metrics = Metrics.create ();
    tracing = false;
    verbose = false;
    backing_pmo = None;
  }

let install t = current := Some t
let uninstall () = current := None
let installed () = !current

let clock t = t.clock
let trace t = t.trace
let metrics t = t.metrics

let set_tracing t on = t.tracing <- on
let tracing t = t.tracing
let set_verbose t on = t.verbose <- on
let verbose t = t.verbose
let set_backing_pmo t id = t.backing_pmo <- Some id
let backing_pmo t = t.backing_pmo

let tracing_enabled () = match !current with Some t -> t.tracing | None -> false

(* --- trace emitters --------------------------------------------------- *)

let enter ?args name =
  match !current with
  | Some t when t.tracing -> Trace.begin_span t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> 0

let exit ?args token =
  if token <> 0 then
    match !current with
    | Some t -> Trace.end_span t.trace ~now:(Clock.now t.clock) ?args token
    | None -> ()

let instant ?args name =
  match !current with
  | Some t when t.tracing -> Trace.instant t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> ()

let span_at ?args name ~ts_ns ~dur_ns =
  match !current with
  | Some t when t.tracing -> Trace.complete t.trace ?args name ~ts_ns ~dur_ns
  | Some _ | None -> ()

(* verbose tier: per-operation events (nvm.alloc, nvm.txn, ipc.call) that
   would otherwise flood the ring during a single checkpoint *)

let enter_v ?args name =
  match !current with
  | Some t when t.tracing && t.verbose -> Trace.begin_span t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> 0

let instant_v ?args name =
  match !current with
  | Some t when t.tracing && t.verbose -> Trace.instant t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> ()

let crash_mark () =
  match !current with
  | Some t when t.tracing ->
    let now = Clock.now t.clock in
    Trace.abort_open t.trace ~now;
    Trace.instant t.trace ~now "crash"
  | Some _ | None -> ()

(* --- metrics emitters ------------------------------------------------- *)

let count name n = match !current with Some t -> Metrics.add t.metrics name n | None -> ()
let gauge name v = match !current with Some t -> Metrics.set_gauge t.metrics name v | None -> ()
let observe name ns = match !current with Some t -> Metrics.observe t.metrics name ns | None -> ()
