module Clock = Treesls_sim.Clock

module Histogram = Treesls_util.Histogram

type t = {
  clock : Clock.t;
  trace : Trace.t;
  metrics : Metrics.t;
  rtrace : Rtrace.t;
  wearmap : Wearmap.t;
  rto : Rto.t;
  tseries : Tseries.t;
  slo : Slo.t;
  enq2vis_w : Histogram.Windowed.t;
      (* windowed enq2vis for the per-sample p50/p99 derived columns:
         fed on every release, rotated once per tseries sample *)
  mutable sample_hook : (unit -> unit) option;
      (* invoked after each tseries sample + SLO check (the adaptive
         interval controller's feedback edge; set by System.boot) *)
  mutable tracing : bool;
  mutable verbose : bool;
  mutable backing_pmo : int option;
  mutable wear_backing_pmo : int option;
  mutable tseries_backing_pmo : int option;
}

(* The simulator is single-threaded, so "the installed probe" is a single
   slot; booting a new system installs its probe (last boot wins).  Every
   emitter below is a no-op costing one load + branch when nothing is
   installed — the instrumented hot paths pay nothing measurable, and
   never any *simulated* time. *)
let current : t option ref = ref None

let create ?(capacity = 4096) ?(tseries_capacity = Tseries.default_capacity) ~clock () =
  {
    clock;
    trace = Trace.create ~capacity ();
    metrics = Metrics.create ();
    rtrace = Rtrace.create ();
    wearmap = Wearmap.create ();
    rto = Rto.create ();
    tseries = Tseries.create ~capacity:tseries_capacity ();
    slo = Slo.create ();
    enq2vis_w = Histogram.Windowed.create ~slices:4 ();
    sample_hook = None;
    tracing = false;
    verbose = false;
    backing_pmo = None;
    wear_backing_pmo = None;
    tseries_backing_pmo = None;
  }

let install t = current := Some t
let uninstall () = current := None
let installed () = !current

let clock t = t.clock
let trace t = t.trace
let metrics t = t.metrics
let rtrace t = t.rtrace

let set_tracing t on = t.tracing <- on
let tracing t = t.tracing
let set_verbose t on = t.verbose <- on
let verbose t = t.verbose
let set_backing_pmo t id = t.backing_pmo <- Some id
let backing_pmo t = t.backing_pmo
let set_wear_backing_pmo t id = t.wear_backing_pmo <- Some id
let wear_backing_pmo t = t.wear_backing_pmo
let set_tseries_backing_pmo t id = t.tseries_backing_pmo <- Some id
let tseries_backing_pmo t = t.tseries_backing_pmo
let wearmap t = t.wearmap
let rto t = t.rto
let tseries t = t.tseries
let slo t = t.slo
let set_sample_hook t f = t.sample_hook <- Some f

let tracing_enabled () = match !current with Some t -> t.tracing | None -> false

(* --- trace emitters --------------------------------------------------- *)

let enter ?args name =
  match !current with
  | Some t when t.tracing -> Trace.begin_span t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> 0

let exit ?args token =
  if token <> 0 then
    match !current with
    | Some t -> Trace.end_span t.trace ~now:(Clock.now t.clock) ?args token
    | None -> ()

let instant ?args name =
  match !current with
  | Some t when t.tracing -> Trace.instant t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> ()

let span_at ?args name ~ts_ns ~dur_ns =
  match !current with
  | Some t when t.tracing -> Trace.complete t.trace ?args name ~ts_ns ~dur_ns
  | Some _ | None -> ()

(* verbose tier: per-operation events (nvm.alloc, nvm.txn, ipc.call) that
   would otherwise flood the ring during a single checkpoint *)

let enter_v ?args name =
  match !current with
  | Some t when t.tracing && t.verbose -> Trace.begin_span t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> 0

let instant_v ?args name =
  match !current with
  | Some t when t.tracing && t.verbose -> Trace.instant t.trace ~now:(Clock.now t.clock) ?args name
  | Some _ | None -> ()

let crash_mark () =
  match !current with
  | Some t ->
    let now = Clock.now t.clock in
    (* pending requests die with the un-committed state regardless of
       whether the trace ring is recording *)
    Rtrace.on_crash t.rtrace;
    (* the crash instant anchors the next recovery's downtime/TTFR *)
    Rto.note_crash t.rto ~now;
    if t.tracing then begin
      Trace.abort_open t.trace ~now;
      Trace.instant t.trace ~now "crash"
    end
  | None -> ()

(* --- RTO / flight-recorder emitters ------------------------------------ *)

(* Always on while a probe is installed, like metrics: the recovery
   profiler reads the simulated clock, never advances it, and the RTO
   observatory must not require the trace ring to be recording (without
   tracing the flight capture is simply empty). *)

let rto_begin_restore () =
  match !current with
  | Some t ->
    (* capture the pre-crash ring tail before any recovery event can be
       recorded into (and wrap events out of) the eternal ring *)
    Rto.begin_restore t.rto ~now:(Clock.now t.clock) ~pre_crash:(Trace.events t.trace)
  | None -> ()

let rto_phase_begin name =
  match !current with
  | Some t -> Rto.phase_begin t.rto ~now:(Clock.now t.clock) name
  | None -> ()

let rto_phase_end () =
  match !current with
  | Some t -> Rto.phase_end t.rto ~now:(Clock.now t.clock)
  | None -> ()

let rto_note_kind name ns = match !current with Some t -> Rto.note_kind t.rto name ns | None -> ()

let rto_restore_done ~version ~restored_objects ~dropped_objects ~pages_restored ~pages_dropped =
  match !current with
  | Some t ->
    Rto.restore_done t.rto ~version ~restored_objects ~dropped_objects ~pages_restored
      ~pages_dropped
  | None -> ()

let rto_abort () = match !current with Some t -> Rto.abort t.rto | None -> ()

let rto_recovered () =
  match !current with
  | Some t -> (
    match Rto.recovered t.rto ~now:(Clock.now t.clock) with
    | None -> ()
    | Some r ->
      Metrics.add t.metrics "restore.recoveries" 1;
      Metrics.set_gauge t.metrics "restore.count" (Rto.count t.rto);
      Metrics.observe t.metrics "restore.total_ns" r.Rto.r_total_ns;
      Metrics.observe t.metrics "restore.downtime_ns" r.Rto.r_downtime_ns;
      Metrics.observe t.metrics "restore.untracked_ns" r.Rto.r_untracked_ns;
      Metrics.add t.metrics "restore.objects_restored" r.Rto.r_restored_objects;
      Metrics.add t.metrics "restore.objects_dropped" r.Rto.r_dropped_objects;
      Metrics.add t.metrics "restore.pages_restored" r.Rto.r_pages_restored;
      Metrics.add t.metrics "restore.pages_dropped" r.Rto.r_pages_dropped;
      List.iter
        (fun (name, ns) -> Metrics.observe t.metrics ("restore.phase." ^ name ^ "_ns") ns)
        r.Rto.r_phases)
  | None -> ()

(* --- request-causality emitters --------------------------------------- *)

(* Like metrics, request tracking is always on while a probe is installed:
   it costs host time only (hash-table + histogram updates), never
   simulated time, and the latency observatory must not require the trace
   ring to be recording. *)

let req_arrive ~origin =
  match !current with
  | Some t ->
    let now = Clock.now t.clock in
    (* first arrival after a recovery closes its time-to-first-request *)
    (match Rto.note_first_request t.rto ~now with
    | Some ttfr -> Metrics.observe t.metrics "restore.ttfr_ns" ttfr
    | None -> ());
    Rtrace.arrive t.rtrace ~now ~origin
  | None -> 0

let req_current () = match !current with Some t -> Rtrace.current_id t.rtrace | None -> 0

let req_handled () =
  match !current with
  | Some t -> Rtrace.handled t.rtrace ~now:(Clock.now t.clock)
  | None -> ()

let req_ipc () = match !current with Some t -> Rtrace.note_ipc t.rtrace | None -> ()

let req_enqueued () =
  match !current with
  | Some t -> Rtrace.enqueued t.rtrace ~now:(Clock.now t.clock)
  | None -> 0

let req_shed ~id =
  match !current with
  | Some t ->
    if Rtrace.shed t.rtrace ~id then Metrics.add t.metrics "req.shed" 1
  | None -> ()

let req_dropped ~id =
  match !current with
  | Some t ->
    if Rtrace.drop t.rtrace ~id then Metrics.add t.metrics "req.dropped" 1
  | None -> ()

let ckpt_committed ~version ~stw_t0 ~stw_t1 =
  match !current with
  | Some t -> Rtrace.on_commit t.rtrace ~version ~stw_t0 ~stw_t1
  | None -> ()

let req_released ~id ~version =
  match !current with
  | Some t -> (
    let now = Clock.now t.clock in
    match Rtrace.released t.rtrace ~now ~id ~version with
    | None -> ()
    | Some rq ->
      Metrics.add t.metrics "req.released" 1;
      Metrics.observe t.metrics "req.enq2vis_ns" (rq.Rtrace.rq_visible_ns - rq.Rtrace.rq_enqueued_ns);
      Histogram.Windowed.add t.enq2vis_w (rq.Rtrace.rq_visible_ns - rq.Rtrace.rq_enqueued_ns);
      Metrics.observe t.metrics "req.e2e_ns" (rq.Rtrace.rq_visible_ns - rq.Rtrace.rq_arrive_ns);
      if t.tracing then begin
        (* Retroactive request slice plus a flow arrow from its enqueue
           point to the interior of the ckpt.stw slice that released it.
           Both flow ends use the request id as the correlation id. *)
        let dur = rq.Rtrace.rq_visible_ns - rq.Rtrace.rq_arrive_ns in
        Trace.complete t.trace "req"
          ~args:
            [
              ("req", string_of_int rq.Rtrace.rq_id);
              ("origin", rq.Rtrace.rq_origin);
              ("commit", "v" ^ string_of_int version);
            ]
          ~ts_ns:rq.Rtrace.rq_arrive_ns ~dur_ns:dur;
        Trace.flow_start t.trace ~flow_id:rq.Rtrace.rq_id "req.flow"
          ~ts_ns:rq.Rtrace.rq_enqueued_ns;
        let fe_ts =
          match Rtrace.last_commit t.rtrace with
          | Some (v, t0, t1) when v = version -> min (max t0 ((t0 + t1) / 2)) (max t0 (t1 - 1))
          | Some _ | None -> now
        in
        Trace.flow_end t.trace ~flow_id:rq.Rtrace.rq_id "req.flow" ~ts_ns:fe_ts
          ~args:[ ("commit", "v" ^ string_of_int version) ]
      end)
  | None -> ()

(* --- wear emitters ---------------------------------------------------- *)

(* Always on while a probe is installed, like metrics: the wearmap is the
   instrument that makes NVM-cost claims falsifiable, so it must not
   require tracing to be enabled.  Host-time cost only. *)

let wear_page_write ~page ~bytes =
  match !current with
  | Some t -> Wearmap.record t.wearmap ~page ~bytes
  | None -> ()

let wear_note ~subsystem ~bytes =
  match !current with
  | Some t -> Wearmap.note t.wearmap ~subsystem ~bytes
  | None -> ()

let wear_copy_charged ~ns =
  match !current with
  | Some t -> Wearmap.copy_charged t.wearmap ~ns
  | None -> ()

let wear_total_bytes () =
  match !current with Some t -> Wearmap.total_bytes t.wearmap | None -> 0

let wear_counter_sample () =
  match !current with
  | Some t when t.tracing ->
    Trace.counter t.trace ~now:(Clock.now t.clock) "nvm.bytes_written"
      ~values:(List.map (fun (name, _, bytes) -> (name, bytes)) (Wearmap.subsystems t.wearmap))
  | Some _ | None -> ()

(* --- tseries / SLO emitters ------------------------------------------- *)

(* Always on while a probe is installed, like metrics: the black box must
   not require tracing to be recording.  Called by [Checkpoint.run] after
   commit (and after the post-commit gauges are set), so samples exist
   only for committed versions — the monotone seq/version spine the
   crashtest sweep verifies across power cuts. *)

let tseries_key_cols =
  [
    "ckpt.stw_ns";
    "ckpt.dirty_fraction_pct";
    "ckpt.nvm.waf";
    "req.enq2vis.p99_ns";
    "extsync.ring.dropped";
  ]

let req_pending_enqueued () =
  match !current with Some t -> Rtrace.pending_enqueued t.rtrace | None -> 0

let tseries_sample ~version ~stw_ns ~interval_ns =
  match !current with
  | None -> ()
  | Some t ->
    let now = Clock.now t.clock in
    (* the full registry: counters and gauges as-is, timers as count+p99 *)
    let snap = Metrics.snapshot t.metrics in
    let registry =
      snap.Metrics.counters @ snap.Metrics.gauges
      @ List.concat_map
          (fun (name, tm) ->
            [ (name ^ ".n", tm.Metrics.tm_count); (name ^ ".p99_ns", tm.Metrics.tm_p99_ns) ])
          snap.Metrics.timers
    in
    (* derived signals: the STW of this commit and the windowed enq2vis
       percentiles ([.n] = releases since the previous sample; rotating
       after reading makes the window a 4-commit sliding one) *)
    let win = Histogram.Windowed.merged t.enq2vis_w in
    let derived =
      [
        ("ckpt.stw_ns", stw_ns);
        ("req.enq2vis.n", Histogram.count (Histogram.Windowed.current t.enq2vis_w));
        ("req.enq2vis.win_n", Histogram.count win);
        ("req.enq2vis.p50_ns", Histogram.percentile win 50.0);
        ("req.enq2vis.p99_ns", Histogram.percentile win 99.0);
      ]
    in
    Histogram.Windowed.rotate t.enq2vis_w;
    Tseries.record t.tseries ~ts_ns:now ~version (registry @ derived);
    (* live counter samples keep the black box on the shared trace/flight
       timeline when tracing is on *)
    if t.tracing then begin
      let s = match Tseries.latest t.tseries with Some s -> s | None -> assert false in
      Trace.counter t.trace ~now "tseries"
        ~values:
          (List.filter_map
             (fun c -> Option.map (fun v -> (c, v)) (Tseries.value t.tseries s c))
             tseries_key_cols)
    end;
    (* the SLO watchdog runs on every sample *)
    let alerts = Slo.check t.slo t.tseries ~interval_ns in
    List.iter
      (fun al ->
        Metrics.add t.metrics "slo.alerts" 1;
        if t.tracing then
          Trace.instant t.trace ~now "slo.alert"
            ~args:
              [
                ("rule", al.Slo.al_rule);
                ("value", Printf.sprintf "%.1f" al.Slo.al_value);
                ("bound", Printf.sprintf "%.1f" al.Slo.al_bound);
                ("version", string_of_int al.Slo.al_version);
              ])
      alerts;
    (* feedback edge: the adaptive interval controller reacts to the
       fresh sample *)
    match t.sample_hook with Some f -> f () | None -> ()

(* --- metrics emitters ------------------------------------------------- *)

let count name n = match !current with Some t -> Metrics.add t.metrics name n | None -> ()
let gauge name v = match !current with Some t -> Metrics.set_gauge t.metrics name v | None -> ()
let observe name ns = match !current with Some t -> Metrics.observe t.metrics name ns | None -> ()
