module Histogram = Treesls_util.Histogram

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  timers : (string, Histogram.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 16; timers = Hashtbl.create 16 }

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace tbl name r;
    r

let add t name n =
  let r = cell t.counters name in
  r := !r + n

let set_gauge t name v =
  let r = cell t.gauges name in
  r := v

let timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace t.timers name h;
    h

let observe t name ns = Histogram.add (timer t name) ns

let counter_value t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0
let histogram t name = Hashtbl.find_opt t.timers name

let timer_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.timers [] |> List.sort String.compare
let gauge_value t name = match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0

type timer_summary = {
  tm_count : int;
  tm_total_ns : int;
  tm_mean_ns : float;
  tm_p50_ns : int;
  tm_p99_ns : int;
  tm_max_ns : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  timers : (string * timer_summary) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun r -> !r);
    gauges = sorted_bindings t.gauges (fun r -> !r);
    timers =
      sorted_bindings t.timers (fun h ->
          {
            tm_count = Histogram.count h;
            tm_total_ns = Histogram.total h;
            tm_mean_ns = Histogram.mean h;
            tm_p50_ns = Histogram.percentile h 50.0;
            tm_p99_ns = Histogram.percentile h 99.0;
            tm_max_ns = Histogram.max_value h;
          });
  }

let reset (t : t) =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.timers

let pp_snapshot ppf s =
  Format.fprintf ppf "counters:@.";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-32s %d@." k v) s.counters;
  if s.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-32s %d@." k v) s.gauges
  end;
  if s.timers <> [] then begin
    Format.fprintf ppf "timers (us):@.";
    List.iter
      (fun (k, tm) ->
        Format.fprintf ppf "  %-32s n=%-8d mean=%-10.2f p50=%-10.2f p99=%-10.2f max=%.2f@." k
          tm.tm_count (tm.tm_mean_ns /. 1e3)
          (float_of_int tm.tm_p50_ns /. 1e3)
          (float_of_int tm.tm_p99_ns /. 1e3)
          (float_of_int tm.tm_max_ns /. 1e3))
      s.timers
  end

let snapshot_to_json s =
  let b = Buffer.create 1024 in
  let esc = Trace.json_escape in
  let kv_ints l =
    String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (esc k) v) l)
  in
  Buffer.add_string b (Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"timers\":{" (kv_ints s.counters) (kv_ints s.gauges));
  List.iteri
    (fun i (k, tm) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"total_ns\":%d,\"mean_ns\":%.1f,\"p50_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d}"
           (esc k) tm.tm_count tm.tm_total_ns tm.tm_mean_ns tm.tm_p50_ns tm.tm_p99_ns tm.tm_max_ns))
    s.timers;
  Buffer.add_string b "}}";
  Buffer.contents b
