(** Crash-surviving metrics time-series — the "black box".

    One fixed-width sample per committed checkpoint, in a bounded ring
    with eternal-PMO semantics: like the trace ring and the wearmap,
    nothing in crash/restore ever resets it, so trends survive power
    cuts and merge with the RTO flight recorder's timeline.  The probe
    records a sample at every checkpoint commit
    ({!Probe.tseries_sample}) from the full metrics registry plus the
    derived signals (dirty fraction, STW, windowed enq2vis p50/p99,
    ring-drop rate, WAF).

    Invariant checked by the crashtest sweep: sequence numbers are
    consecutive, timestamps nondecreasing, and versions strictly
    increasing across every crash/restore — samples exist only for
    committed versions, so a torn, duplicated or reordered sample
    cannot appear. *)

type sample = {
  sp_seq : int;  (** monotone across crashes; equals [total] at record time *)
  sp_version : int;  (** committed checkpoint version *)
  sp_ts_ns : int;
  sp_values : int array;  (** cell per column id at record time; internal *)
}

type t

val default_capacity : int
(** 1024 samples. *)

val create : ?capacity:int -> ?max_cols:int -> unit -> t
(** Ring of [capacity] samples (default 1024) with a fixed column budget
    of [max_cols] (default 125; columns interned past the budget are
    counted in {!cols_dropped} and silently skipped, keeping samples
    fixed-width). *)

val slot_bytes : max_cols:int -> int
(** Bytes per sample slot: seq + version + ts + one 8-byte cell per
    column budget slot. *)

val backing_bytes : t -> int
(** [capacity * slot_bytes] — what the eternal backing PMO reserves. *)

val record : t -> ts_ns:int -> version:int -> (string * int) list -> unit
(** Append one sample; unknown column names are interned on first use. *)

val capacity : t -> int
val total : t -> int
(** Samples ever recorded — the monotone spine; never reset. *)

val length : t -> int
val dropped : t -> int
val columns : t -> string list
(** In interning (column id) order. *)

val column_count : t -> int
val cols_dropped : t -> int
val samples : t -> sample list
(** Retained samples, oldest first. *)

val latest : t -> sample option
val window : t -> n:int -> sample list
(** Newest [n] retained samples, oldest first. *)

val value : t -> sample -> string -> int option
(** [None] if the column is unknown or absent in this sample. *)

(** {2 Query layer} — windowed over the newest [n] samples. *)

val series : t -> string -> n:int -> (sample * int) list
val delta : t -> string -> n:int -> int option
(** Newest minus oldest value over the window; [None] with <2 points. *)

val rate_per_s : t -> string -> n:int -> float option
(** [delta / elapsed] in units per second; [None] with <2 points or zero
    elapsed time. *)

val ewma : t -> string -> alpha:float -> float option
(** Exponentially weighted moving average over all retained samples,
    oldest first. *)

val percentile_over : t -> string -> n:int -> p:float -> int option
(** Percentile of the per-sample values over the window (each sample
    counts as one observation). *)

val mean_over : t -> string -> n:int -> float option
val max_over : t -> string -> n:int -> int option

(** {2 Export} *)

val to_csv : t -> string
(** Header [seq,version,ts_ns,<columns...>]; absent cells are empty. *)

val to_json : ?last:int -> t -> string

val to_perfetto_json : ?pid:int -> ?tid:int -> ?cols:string list -> t -> string
(** Standalone Perfetto counter-track export: exactly one [ph:"C"] event
    per retained sample on a dedicated "tseries" track (so exported
    counter points = {!counter_points}), carrying [cols] (default: all
    registered columns) as numeric args. *)

val counter_points : t -> int
(** Number of counter events {!to_perfetto_json} emits = {!length}. *)

val pp : ?last:int -> Format.formatter -> t -> unit
