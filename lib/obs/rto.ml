(* Restore-time (RTO) profiler and crash flight recorder.

   One [t] lives in the probe and — like the metrics registry and the
   trace ring — is modelled as eternal-PMO state: it survives a simulated
   crash/restore instead of rolling back with the kernel tree, so the
   [last] record is readable after the outage it describes.

   A recovery profile is built in three steps:
   - [begin_restore] (from [Restore.run]) opens a building profile and
     captures the pre-crash tail of the eternal trace ring before any
     recovery event can enter it;
   - [phase_begin]/[phase_end] bracket the named restore phases.  Phases
     nest (the per-PMO page remap runs inside object materialisation);
     accounting is EXCLUSIVE — a parent's time excludes its children's —
     so the recorded phases tile the recovery wall and their sum plus the
     [r_untracked_ns] residue equals [r_total_ns] exactly;
   - [recovered] (from [System.recover], after service re-setup) seals the
     profile into a [record].

   All timestamps are simulated nanoseconds from [Treesls_sim.Clock]: the
   profiler reads the clock other code advances and never charges time
   itself, so profiling cannot perturb the restore being measured. *)

type phase_span = { ps_name : string; ps_t0 : int; ps_t1 : int }

type record = {
  r_index : int;
  r_version : int;
  r_crash_ns : int;
  r_begin_ns : int;
  r_end_ns : int;
  r_total_ns : int;
  r_downtime_ns : int;
  r_phases : (string * int) list;
  r_untracked_ns : int;
  r_per_kind_ns : (string * int) list;
  r_spans : phase_span list;
  r_restored_objects : int;
  r_dropped_objects : int;
  r_pages_restored : int;
  r_pages_dropped : int;
  mutable r_ttfr_ns : int;
  r_pre_crash : Trace.event list;
}

type frame = { f_name : string; f_t0 : int; mutable f_child_ns : int }

type building = {
  b_t0 : int;
  b_crash_ns : int;
  b_pre_crash : Trace.event list;
  mutable b_stack : frame list;
  b_excl : (string, int) Hashtbl.t;
  mutable b_order : string list; (* reverse order of first appearance *)
  b_kinds : (string, int) Hashtbl.t;
  mutable b_kind_order : string list;
  mutable b_spans : phase_span list; (* reverse *)
  mutable b_done : (int * int * int * int * int) option;
}

type t = {
  mutable cur : building option;
  mutable last : record option;
  mutable restores : int;
  mutable crash_ns : int;
  mutable awaiting_req : bool;
}

let create () = { cur = None; last = None; restores = 0; crash_ns = -1; awaiting_req = false }
let last t = t.last
let count t = t.restores
let in_restore t = t.cur <> None

let note_crash t ~now =
  t.crash_ns <- now;
  t.awaiting_req <- false

let begin_restore t ~now ~pre_crash =
  t.cur <-
    Some
      {
        b_t0 = now;
        b_crash_ns = t.crash_ns;
        b_pre_crash = pre_crash;
        b_stack = [];
        b_excl = Hashtbl.create 16;
        b_order = [];
        b_kinds = Hashtbl.create 8;
        b_kind_order = [];
        b_spans = [];
        b_done = None;
      }

let bump tbl order name ns =
  match Hashtbl.find_opt tbl name with
  | Some prev -> Hashtbl.replace tbl name (prev + ns)
  | None ->
    order := name :: !order;
    Hashtbl.replace tbl name ns

let phase_begin t ~now name =
  match t.cur with
  | None -> ()
  | Some b -> b.b_stack <- { f_name = name; f_t0 = now; f_child_ns = 0 } :: b.b_stack

let phase_end t ~now =
  match t.cur with
  | None -> ()
  | Some b -> (
    match b.b_stack with
    | [] -> () (* unmatched end: ignore, like Trace.end_span *)
    | f :: rest ->
      b.b_stack <- rest;
      let incl = now - f.f_t0 in
      let order = ref b.b_order in
      bump b.b_excl order f.f_name (incl - f.f_child_ns);
      b.b_order <- !order;
      (match rest with p :: _ -> p.f_child_ns <- p.f_child_ns + incl | [] -> ());
      b.b_spans <- { ps_name = f.f_name; ps_t0 = f.f_t0; ps_t1 = now } :: b.b_spans)

let note_kind t name ns =
  match t.cur with
  | None -> ()
  | Some b ->
    let order = ref b.b_kind_order in
    bump b.b_kinds order name ns;
    b.b_kind_order <- !order

let restore_done t ~version ~restored_objects ~dropped_objects ~pages_restored ~pages_dropped =
  match t.cur with
  | None -> ()
  | Some b ->
    b.b_done <- Some (version, restored_objects, dropped_objects, pages_restored, pages_dropped)

let abort t = t.cur <- None

let recovered t ~now =
  match t.cur with
  | None -> None
  | Some b -> (
    match b.b_done with
    | None ->
      (* recovery "completed" without a successful Restore.run: nothing
         trustworthy to seal *)
      t.cur <- None;
      None
    | Some (version, robj, dobj, pres, pdrop) ->
      while b.b_stack <> [] do
        phase_end t ~now
      done;
      let total = now - b.b_t0 in
      let phases = List.rev_map (fun n -> (n, Hashtbl.find b.b_excl n)) b.b_order in
      let sum = List.fold_left (fun a (_, ns) -> a + ns) 0 phases in
      let downtime =
        if b.b_crash_ns >= 0 && b.b_crash_ns <= now then now - b.b_crash_ns else total
      in
      t.restores <- t.restores + 1;
      let r =
        {
          r_index = t.restores;
          r_version = version;
          r_crash_ns = b.b_crash_ns;
          r_begin_ns = b.b_t0;
          r_end_ns = now;
          r_total_ns = total;
          r_downtime_ns = downtime;
          r_phases = phases;
          r_untracked_ns = total - sum;
          r_per_kind_ns = List.rev_map (fun n -> (n, Hashtbl.find b.b_kinds n)) b.b_kind_order;
          r_spans = List.rev b.b_spans;
          r_restored_objects = robj;
          r_dropped_objects = dobj;
          r_pages_restored = pres;
          r_pages_dropped = pdrop;
          r_ttfr_ns = -1;
          r_pre_crash = b.b_pre_crash;
        }
      in
      t.cur <- None;
      t.last <- Some r;
      t.awaiting_req <- true;
      Some r)

let note_first_request t ~now =
  if not t.awaiting_req then None
  else begin
    t.awaiting_req <- false;
    match t.last with
    | Some r when r.r_ttfr_ns < 0 ->
      (* measured from the crash instant when known: the full outage as a
         client would see it (downtime + post-recovery dispatch) *)
      let from = if r.r_crash_ns >= 0 then r.r_crash_ns else r.r_begin_ns in
      r.r_ttfr_ns <- now - from;
      Some r.r_ttfr_ns
    | Some _ | None -> None
  end

(* --- export ----------------------------------------------------------- *)

let esc = Trace.json_escape

let kv_ns_obj l =
  String.concat "," (List.map (fun (k, ns) -> Printf.sprintf "\"%s\":%d" (esc k) ns) l)

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"restore_index\":%d,\"version\":%d,\"crash_ns\":%d,\"begin_ns\":%d,\"end_ns\":%d,\"total_ns\":%d,\"downtime_ns\":%d,\"untracked_ns\":%d,\"ttfr_ns\":%d"
       r.r_index r.r_version r.r_crash_ns r.r_begin_ns r.r_end_ns r.r_total_ns r.r_downtime_ns
       r.r_untracked_ns r.r_ttfr_ns);
  Buffer.add_string b
    (Printf.sprintf
       ",\"restored_objects\":%d,\"dropped_objects\":%d,\"pages_restored\":%d,\"pages_dropped\":%d"
       r.r_restored_objects r.r_dropped_objects r.r_pages_restored r.r_pages_dropped);
  Buffer.add_string b (Printf.sprintf ",\"phases\":{%s}" (kv_ns_obj r.r_phases));
  Buffer.add_string b (Printf.sprintf ",\"per_kind_ns\":{%s}" (kv_ns_obj r.r_per_kind_ns));
  Buffer.add_string b
    (Printf.sprintf ",\"pre_crash_events\":%d}" (List.length r.r_pre_crash));
  Buffer.contents b

let us ns = float_of_int ns /. 1e3

let pp ppf r =
  Format.fprintf ppf "== last recovery: restore #%d -> v%d ==@." r.r_index r.r_version;
  if r.r_crash_ns >= 0 then Format.fprintf ppf "  crash at     %12.3f us@." (us r.r_crash_ns);
  Format.fprintf ppf "  restore      %12.3f us (begin %.3f us)@." (us r.r_total_ns)
    (us r.r_begin_ns);
  Format.fprintf ppf "  downtime     %12.3f us@." (us r.r_downtime_ns);
  if r.r_ttfr_ns >= 0 then
    Format.fprintf ppf "  first request%12.3f us after crash@." (us r.r_ttfr_ns);
  Format.fprintf ppf "  objects      %d restored, %d dropped@." r.r_restored_objects
    r.r_dropped_objects;
  Format.fprintf ppf "  pages        %d restored, %d dropped@." r.r_pages_restored
    r.r_pages_dropped;
  Format.fprintf ppf "  phases (exclusive):@.";
  List.iter
    (fun (name, ns) ->
      Format.fprintf ppf "    %-16s %12.3f us  %5.1f%%@." name (us ns)
        (100.0 *. float_of_int ns /. float_of_int (max 1 r.r_total_ns)))
    r.r_phases;
  Format.fprintf ppf "    %-16s %12.3f us  %5.1f%%@." "(untracked)" (us r.r_untracked_ns)
    (100.0 *. float_of_int r.r_untracked_ns /. float_of_int (max 1 r.r_total_ns));
  if r.r_per_kind_ns <> [] then begin
    Format.fprintf ppf "  materialize by kind:@.";
    List.iter
      (fun (name, ns) -> Format.fprintf ppf "    %-16s %12.3f us@." name (us ns))
      r.r_per_kind_ns
  end;
  Format.fprintf ppf "  flight: %d pre-crash events captured@." (List.length r.r_pre_crash)

(* Flight-recorder timeline: the pre-crash tail of the eternal trace ring
   on one named track, the crash instant and the recovery-phase spans on
   another, in a single Perfetto file. *)
let flight_to_perfetto_json ?(pid = 1) r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Trace.meta_process_name b ~pid "treesls";
  Buffer.add_char b ',';
  Trace.meta_thread_name b ~pid ~tid:1 "pre-crash";
  Buffer.add_char b ',';
  Trace.meta_thread_name b ~pid ~tid:2 "recovery";
  List.iter
    (fun e ->
      Buffer.add_char b ',';
      Trace.event_json ~pid ~tid:1 b e)
    r.r_pre_crash;
  let crash_ts = if r.r_crash_ns >= 0 then r.r_crash_ns else r.r_begin_ns in
  Buffer.add_char b ',';
  Trace.event_json ~pid ~tid:2 b
    {
      Trace.seq = 0;
      name = "crash";
      cat = "crash";
      ph = Trace.Instant;
      ts_ns = crash_ts;
      dur_ns = 0;
      id = 0;
      parent = 0;
      args = [ ("marker", "flight") ];
    };
  Buffer.add_char b ',';
  Trace.event_json ~pid ~tid:2 b
    {
      Trace.seq = 0;
      name = "recovery";
      cat = "rto";
      ph = Trace.Complete;
      ts_ns = r.r_begin_ns;
      dur_ns = r.r_total_ns;
      id = 1;
      parent = 0;
      args =
        [ ("version", string_of_int r.r_version); ("restore", string_of_int r.r_index) ];
    };
  List.iter
    (fun s ->
      Buffer.add_char b ',';
      Trace.event_json ~pid ~tid:2 b
        {
          Trace.seq = 0;
          name = "rto." ^ s.ps_name;
          cat = "rto";
          ph = Trace.Complete;
          ts_ns = s.ps_t0;
          dur_ns = s.ps_t1 - s.ps_t0;
          id = 0;
          parent = 1;
          args = [];
        })
    r.r_spans;
  Buffer.add_string b "]}";
  Buffer.contents b
