type phase = Complete | Instant | Flow_start | Flow_end | Counter

type event = {
  seq : int;
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int;
  dur_ns : int;
  id : int;
  parent : int;
  args : (string * string) list;
}

type open_span = {
  os_id : int;
  os_name : string;
  os_t0 : int;
  os_parent : int;
  os_args : (string * string) list;
}

type t = {
  cap : int;
  buf : event option array;
  mutable total : int; (* events ever recorded; write index = total mod cap *)
  mutable next_id : int;
  mutable stack : open_span list;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { cap = capacity; buf = Array.make capacity None; total = 0; next_id = 1; stack = [] }

let capacity t = t.cap
let total t = t.total
let length t = min t.total t.cap
let dropped t = if t.total > t.cap then t.total - t.cap else 0
let open_spans t = List.length t.stack

(* the category is the event-name prefix: "ckpt.captree" -> "ckpt" *)
let cat_of name = match String.index_opt name '.' with None -> name | Some i -> String.sub name 0 i

let record t ~name ~ph ~ts_ns ~dur_ns ~id ~parent ~args =
  t.buf.(t.total mod t.cap) <-
    Some { seq = t.total; name; cat = cat_of name; ph; ts_ns; dur_ns; id; parent; args };
  t.total <- t.total + 1

let current_parent t = match t.stack with [] -> 0 | s :: _ -> s.os_id

let begin_span t ~now ?(args = []) name =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.stack <- { os_id = id; os_name = name; os_t0 = now; os_parent = current_parent t; os_args = args } :: t.stack;
  id

let close_span t ~now ~extra_args s =
  record t ~name:s.os_name ~ph:Complete ~ts_ns:s.os_t0 ~dur_ns:(now - s.os_t0) ~id:s.os_id
    ~parent:s.os_parent ~args:(s.os_args @ extra_args)

let end_span t ~now ?(args = []) id =
  match List.partition (fun s -> s.os_id = id) t.stack with
  | [ s ], rest ->
    t.stack <- rest;
    close_span t ~now ~extra_args:args s
  | _, _ -> () (* unknown or double-ended span id: ignore *)

let instant t ~now ?(args = []) name =
  record t ~name ~ph:Instant ~ts_ns:now ~dur_ns:0 ~id:0 ~parent:(current_parent t) ~args

let complete t ?(args = []) name ~ts_ns ~dur_ns =
  let id = t.next_id in
  t.next_id <- id + 1;
  record t ~name ~ph:Complete ~ts_ns ~dur_ns ~id ~parent:(current_parent t) ~args

(* Flow events carry the caller's correlation id (e.g. a request id) in
   [id]; the viewer binds each end to the enclosing slice by timestamp. *)
let flow_start t ?(args = []) ~flow_id name ~ts_ns =
  record t ~name ~ph:Flow_start ~ts_ns ~dur_ns:0 ~id:flow_id ~parent:0 ~args

let flow_end t ?(args = []) ~flow_id name ~ts_ns =
  record t ~name ~ph:Flow_end ~ts_ns ~dur_ns:0 ~id:flow_id ~parent:0 ~args

(* Counter samples ([ph:"C"]) render as stacked counter tracks in the
   Perfetto UI; values are stored stringified but exported as raw numbers
   (the viewer requires numeric args for counters). *)
let counter t ~now name ~values =
  record t ~name ~ph:Counter ~ts_ns:now ~dur_ns:0 ~id:0 ~parent:0
    ~args:(List.map (fun (k, v) -> (k, string_of_int v)) values)

let abort_open t ~now =
  List.iter (fun s -> close_span t ~now ~extra_args:[ ("aborted", "true") ] s) t.stack;
  t.stack <- []

let events t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.cap) with
      | Some e -> e
      | None -> assert false (* slots below [length] are always filled *))

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.total <- 0;
  t.stack <- []

(* ------------------------------------------------------------------ *)
(* Chrome/Perfetto trace_event JSON export.  No JSON library is baked
   into the container, so the (flat, simple) format is emitted by hand. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* trace_event timestamps are in microseconds; keep ns precision with a
   fractional part *)
let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e3)

let event_json ~pid ~tid b e =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d"
       (json_escape e.name) (json_escape e.cat)
       (match e.ph with
       | Complete -> "X"
       | Instant -> "i"
       | Flow_start -> "s"
       | Flow_end -> "f"
       | Counter -> "C")
       (us e.ts_ns) pid tid);
  (match e.ph with
  | Complete -> Buffer.add_string b (Printf.sprintf ",\"dur\":%s" (us e.dur_ns))
  | Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Flow_start -> Buffer.add_string b (Printf.sprintf ",\"id\":%d" e.id)
  (* "bp":"e" binds the arrow to the enclosing slice rather than the
     next slice on the track — required to land on ckpt.stw itself *)
  | Flow_end -> Buffer.add_string b (Printf.sprintf ",\"id\":%d,\"bp\":\"e\"" e.id)
  | Counter -> ());
  Buffer.add_string b ",\"args\":{";
  (match e.ph with
  | Counter ->
    (* counter args must be raw numbers for the viewer to build tracks *)
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape k) v))
      e.args
  | Complete | Instant | Flow_start | Flow_end ->
    let is_flow = match e.ph with Flow_start | Flow_end -> true | _ -> false in
    let args =
      [ ("seq", string_of_int e.seq) ]
      @ (if e.id <> 0 && not is_flow then [ ("span", string_of_int e.id) ] else [])
      @ (if e.parent <> 0 then [ ("parent", string_of_int e.parent) ] else [])
      @ e.args
    in
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      args);
  Buffer.add_string b "}}"

(* Perfetto metadata ("M") events name the process/thread tracks in the
   viewer; without them every track shows a bare pid/tid number. *)
let meta_process_name b ~pid name =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
       pid (json_escape name))

let meta_thread_name b ~pid ~tid name =
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
       pid tid (json_escape name))

let to_perfetto_json ?(pid = 1) ?(tid = 1) ?(proc_name = "treesls") ?(track_name = "kernel")
    ?(req_track_name = "requests") t =
  let evs = events t in
  (* request-causality events get their own named track so the rtrace
     timeline is separable from the checkpoint pipeline in the UI *)
  let has_req = List.exists (fun e -> e.cat = "req") evs in
  let req_tid = tid + 1 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  meta_process_name b ~pid proc_name;
  Buffer.add_char b ',';
  meta_thread_name b ~pid ~tid track_name;
  if has_req then begin
    Buffer.add_char b ',';
    meta_thread_name b ~pid ~tid:req_tid req_track_name
  end;
  List.iter
    (fun e ->
      Buffer.add_char b ',';
      event_json ~pid ~tid:(if e.cat = "req" then req_tid else tid) b e)
    evs;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_event ppf e =
  let args =
    match e.args with
    | [] -> ""
    | l -> " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
  in
  match e.ph with
  | Complete ->
    Format.fprintf ppf "[%8d] %10.3fus +%10.3fus %-20s%s" e.seq
      (float_of_int e.ts_ns /. 1e3) (float_of_int e.dur_ns /. 1e3) e.name args
  | Instant ->
    Format.fprintf ppf "[%8d] %10.3fus %12s %-20s%s" e.seq (float_of_int e.ts_ns /. 1e3) "" e.name
      args
  | Flow_start ->
    Format.fprintf ppf "[%8d] %10.3fus %12s %-20s id=%d%s" e.seq (float_of_int e.ts_ns /. 1e3)
      "flow>" e.name e.id args
  | Flow_end ->
    Format.fprintf ppf "[%8d] %10.3fus %12s %-20s id=%d%s" e.seq (float_of_int e.ts_ns /. 1e3)
      ">flow" e.name e.id args
  | Counter ->
    Format.fprintf ppf "[%8d] %10.3fus %12s %-20s%s" e.seq (float_of_int e.ts_ns /. 1e3)
      "counter" e.name args
